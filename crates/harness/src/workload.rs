//! The paper's two benchmark workloads (§5.1) and one timed iteration.
//!
//! - **enqueue–dequeue pairs**: each thread alternates enqueue and dequeue;
//!   the benchmark performs `total_ops / 2` pairs split evenly over threads.
//! - **50% enqueues**: each thread flips a uniform coin per operation.
//!
//! Between operations every thread performs a random 50–100 ns spin "work"
//! to break up long runs (one thread monopolizing the queue from its own
//! L1); the spin time is excluded from the reported throughput exactly as
//! in the paper.
//!
//! Beyond the paper's closed-loop workloads, this module also hosts the
//! **open-loop engine** ([`ArrivalSchedule`], [`OpenLoopConfig`],
//! [`run_open_loop_iteration`]): deterministic arrival schedules whose
//! intended-start timestamps are generated *ahead of execution*, so the
//! recorded latency of every op is `completion − intended_start` —
//! coordinated-omission-free by construction (a stalled generator cannot
//! silently absorb queueing delay into the load it offers; the delay shows
//! up in the next samples instead, exactly as it would for real clients).

use std::sync::Barrier;
use std::time::{Duration, Instant};

use wfq_baselines::{BenchQueue, QueueHandle};
use wfq_sync::delay::SpinDelay;
use wfq_sync::XorShift64;

use crate::attribution::Attribution;
use crate::histogram::Histogram;
use crate::topology;

/// Which workload to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// Enqueue–dequeue pairs.
    Pairs,
    /// Enqueue or dequeue with equal odds per operation.
    FiftyEnqueues,
    /// Enqueue–dequeue pairs in batches of the given width: each thread
    /// alternates one `enqueue_batch` of `k` values with one
    /// `dequeue_batch` of up to `k` (one FAA per `k` operations on the
    /// wait-free queue, the element loop on baselines without a native
    /// batch path). An under-delivering dequeue batch leaves the surplus
    /// for later rounds, mirroring how `Pairs` tolerates `None`.
    BatchPairs(u32),
}

impl Workload {
    /// Paper-style display name (batch width reported separately).
    pub fn name(self) -> &'static str {
        match self {
            Workload::Pairs => "enqueue-dequeue pairs",
            Workload::FiftyEnqueues => "50%-enqueues",
            Workload::BatchPairs(_) => "batched pairs",
        }
    }

    /// The batch width this workload claims per FAA (1 for the
    /// element-wise workloads).
    pub fn batch_width(self) -> u32 {
        match self {
            Workload::BatchPairs(k) => k.max(1),
            _ => 1,
        }
    }
}

/// Full benchmark configuration (defaults reproduce the paper, with
/// `total_ops` left to the caller to scale to the host).
#[derive(Debug, Clone)]
pub struct BenchConfig {
    /// Concurrency level.
    pub threads: usize,
    /// Operations per iteration, split evenly over threads (paper: 10^7).
    pub total_ops: u64,
    /// Workload shape.
    pub workload: Workload,
    /// Inclusive bounds of the inter-operation "work" in nanoseconds
    /// (paper: 50–100; set to (0, 0) to disable).
    pub delay_ns: (u64, u64),
    /// Maximum iterations per invocation (paper: 20).
    pub max_iterations: usize,
    /// Steady-state window length (paper: 5).
    pub window: usize,
    /// Steady-state COV threshold (paper: 0.02).
    pub cov_threshold: f64,
    /// Number of invocations (paper: 10).
    pub invocations: usize,
    /// Pin threads compactly to hardware threads.
    pub pin: bool,
    /// Base PRNG seed (per-thread streams are derived from it).
    pub seed: u64,
    /// Bounded-memory mode: cap the queue at this many live segments
    /// (honored only by queues with [`BenchQueue::HONORS_CEILING`]).
    pub segment_ceiling: Option<u64>,
    /// Synthetic per-operation slowdown in nanoseconds, spun *inside* the
    /// measured window — unlike `delay_ns` it is **not** work-excluded, so
    /// it lands in the reported throughput. Exists so `wfq-regress` can be
    /// integration-tested against a guaranteed regression (CI injects a few
    /// hundred ns here and asserts the gate trips).
    pub handicap_ns: u64,
}

impl Default for BenchConfig {
    fn default() -> Self {
        Self {
            threads: 1,
            total_ops: 1_000_000,
            workload: Workload::Pairs,
            delay_ns: (50, 100),
            max_iterations: 20,
            window: 5,
            cov_threshold: 0.02,
            invocations: 10,
            pin: true,
            seed: 0xC0FFEE,
            segment_ceiling: None,
            handicap_ns: 0,
        }
    }
}

impl BenchConfig {
    /// The paper's exact parameters (10^7 ops — slow on small hosts).
    pub fn paper(workload: Workload) -> Self {
        Self {
            total_ops: 10_000_000,
            workload,
            ..Self::default()
        }
    }

    /// A configuration scaled for quick runs (CI, laptops).
    pub fn quick(workload: Workload) -> Self {
        Self {
            total_ops: 200_000,
            workload,
            max_iterations: 8,
            invocations: 3,
            ..Self::default()
        }
    }
}

/// Runs one timed iteration of the workload against `q`; returns
/// throughput in Mops/s with the injected work time excluded.
///
/// Values enqueued are `thread_tag | counter` and therefore unique, so the
/// same workload drivers double as checker workloads.
pub fn run_iteration<Q: BenchQueue>(q: &Q, cfg: &BenchConfig, delay: &SpinDelay, round: u64) -> f64 {
    let threads = cfg.threads.max(1);
    let per_thread = (cfg.total_ops / threads as u64).max(2);
    let barrier = Barrier::new(threads);
    // Per-thread effective (work-excluded) nanoseconds.
    let mut effective_ns = vec![0u64; threads];

    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let q = &q;
                let barrier = &barrier;
                let cfg = &cfg;
                s.spawn(move || {
                    if cfg.pin {
                        topology::pin_to_cpu(t);
                    }
                    let mut h = q.register();
                    let mut rng =
                        XorShift64::for_stream(cfg.seed ^ round.wrapping_mul(0x9E37), t as u64);
                    // Unique-value tag: thread in the top bits, 1-based
                    // counter below. Stays clear of 0 and u64::MAX.
                    let tag = ((t as u64 + 1) << 40) | 1;
                    let mut counter = 0u64;
                    let (dlo, dhi) = cfg.delay_ns;
                    let handicap = cfg.handicap_ns;
                    let mut delay_ns_total = 0u64;
                    let spin = |rng: &mut XorShift64, total: &mut u64| {
                        if handicap > 0 {
                            // Deliberately not added to `total`: the
                            // handicap must survive work exclusion.
                            delay.wait_ns(handicap);
                        }
                        if dhi > 0 {
                            let ns = rng.next_in(dlo, dhi);
                            *total += ns;
                            delay.wait_ns(ns);
                        }
                    };

                    barrier.wait();
                    let start = Instant::now();
                    match cfg.workload {
                        Workload::Pairs => {
                            let pairs = per_thread / 2;
                            for _ in 0..pairs {
                                counter += 1;
                                h.enqueue(tag + counter);
                                spin(&mut rng, &mut delay_ns_total);
                                let _ = h.dequeue();
                                spin(&mut rng, &mut delay_ns_total);
                            }
                        }
                        Workload::FiftyEnqueues => {
                            for _ in 0..per_thread {
                                if rng.coin() {
                                    counter += 1;
                                    h.enqueue(tag + counter);
                                } else {
                                    let _ = h.dequeue();
                                }
                                spin(&mut rng, &mut delay_ns_total);
                            }
                        }
                        Workload::BatchPairs(k) => {
                            let k = k.max(1) as usize;
                            let rounds = (per_thread / (2 * k as u64)).max(1);
                            let mut batch = Vec::with_capacity(k);
                            let mut out = Vec::with_capacity(k);
                            for _ in 0..rounds {
                                batch.clear();
                                for _ in 0..k {
                                    counter += 1;
                                    batch.push(tag + counter);
                                }
                                h.enqueue_batch(&batch);
                                spin(&mut rng, &mut delay_ns_total);
                                out.clear();
                                let _ = h.dequeue_batch(&mut out, k);
                                spin(&mut rng, &mut delay_ns_total);
                            }
                        }
                    }
                    let elapsed = start.elapsed().as_nanos() as u64;
                    // Work exclusion with a sanity floor: if the calibrated
                    // spin undershot (preempted calibration), subtracting
                    // the intended delay could erase nearly all of the
                    // elapsed time and report absurd throughput. Queue
                    // operations always cost a nontrivial share of the
                    // delay-inclusive runtime, so floor at elapsed / 20.
                    elapsed
                        .saturating_sub(delay_ns_total)
                        .max(elapsed / 20)
                        .max(1)
                })
            })
            .collect();
        for (t, h) in handles.into_iter().enumerate() {
            effective_ns[t] = h.join().expect("benchmark thread panicked");
        }
    });

    // Throughput over the slowest thread's effective time — every thread
    // performed per_thread ops (rounded down to pairs for Pairs).
    let ops_done: u64 = match cfg.workload {
        Workload::Pairs => (per_thread / 2) * 2 * threads as u64,
        Workload::FiftyEnqueues => per_thread * threads as u64,
        Workload::BatchPairs(k) => {
            let k = k.max(1) as u64;
            (per_thread / (2 * k)).max(1) * 2 * k * threads as u64
        }
    };
    let max_ns = *effective_ns.iter().max().unwrap() as f64;
    ops_done as f64 / max_ns * 1e3 // ops/ns → Mops/s
}

// ----------------------------------------------------------------------
// Open-loop engine (latency observatory)
// ----------------------------------------------------------------------

/// Deterministic arrival-schedule shapes for the open-loop engine. All
/// three generate the full timestamp vector ahead of execution from the
/// seeded PRNG, so a run is reproducible and coordinated-omission-free.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalSchedule {
    /// Evenly spaced arrivals at exactly the offered rate.
    FixedRate,
    /// Poisson process: exponential inter-arrival gaps (`−ln(U)·mean`),
    /// the classic open-system client model.
    Poisson,
    /// On/off bursts: [`BURST_PHASE_NS`] of arrivals at **twice** the
    /// offered rate, then an equal silent phase — same average rate as
    /// `FixedRate`, but the queue must absorb 2× transients.
    Bursty,
}

/// Length of one on (and one off) phase of [`ArrivalSchedule::Bursty`].
pub const BURST_PHASE_NS: u64 = 1_000_000;

impl ArrivalSchedule {
    /// Display/CLI name.
    pub fn name(self) -> &'static str {
        match self {
            ArrivalSchedule::FixedRate => "fixed",
            ArrivalSchedule::Poisson => "poisson",
            ArrivalSchedule::Bursty => "bursty",
        }
    }

    /// Parses a CLI name (`fixed`, `poisson`, `bursty`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "fixed" => Some(ArrivalSchedule::FixedRate),
            "poisson" => Some(ArrivalSchedule::Poisson),
            "bursty" => Some(ArrivalSchedule::Bursty),
            _ => None,
        }
    }
}

/// Generates `n` intended-start offsets (nanoseconds from the iteration
/// epoch, nondecreasing) for one generator thread offering
/// `rate_ops_per_sec`. Generated entirely before the run starts: the
/// schedule is what an *independent* open-system client population would
/// offer, unperturbed by how the queue responds.
pub fn gen_arrivals(
    schedule: ArrivalSchedule,
    rate_ops_per_sec: f64,
    n: usize,
    seed: u64,
) -> Vec<u64> {
    assert!(rate_ops_per_sec > 0.0, "offered rate must be positive");
    let mean_gap = 1e9 / rate_ops_per_sec; // ns between arrivals
    let mut out = Vec::with_capacity(n);
    match schedule {
        ArrivalSchedule::FixedRate => {
            for i in 0..n {
                out.push((i as f64 * mean_gap) as u64);
            }
        }
        ArrivalSchedule::Poisson => {
            let mut rng = XorShift64::for_stream(seed, 0x0A12);
            let mut t = 0.0f64;
            for _ in 0..n {
                // U in (0, 1]: 53 mantissa bits, never exactly zero.
                let u = ((rng.next_u64() >> 11) + 1) as f64 / (1u64 << 53) as f64;
                t += -u.ln() * mean_gap;
                out.push(t as u64);
            }
        }
        ArrivalSchedule::Bursty => {
            // Arrivals at 2× rate during on-phases only: walk "on time" at
            // half the mean gap and fold it into the on/off wall clock.
            let gap2 = mean_gap / 2.0;
            for i in 0..n {
                let on_time = (i as f64 * gap2) as u64;
                let phase = on_time / BURST_PHASE_NS;
                out.push(phase * 2 * BURST_PHASE_NS + on_time % BURST_PHASE_NS);
            }
        }
    }
    out
}

/// Configuration of one open-loop measurement (one backend, one offered
/// rate).
#[derive(Debug, Clone)]
pub struct OpenLoopConfig {
    /// Generator threads; the offered rate is split evenly across them.
    pub threads: usize,
    /// Aggregate offered arrival rate, operations per second.
    pub rate_ops_per_sec: f64,
    /// Total operations per iteration, split evenly over threads.
    pub total_ops: u64,
    /// Arrival schedule shape.
    pub schedule: ArrivalSchedule,
    /// Invocations (fresh queue each; quantiles get a Student-t CI).
    pub invocations: usize,
    /// Pin generator threads compactly to hardware threads.
    pub pin: bool,
    /// Base PRNG seed (per-thread streams derive from it).
    pub seed: u64,
    /// Bounded-memory ceiling for backends that honor it.
    pub segment_ceiling: Option<u64>,
    /// Synthetic per-op slowdown spun *inside* the measured latency (the
    /// regression-gate trip wire; mirrors [`BenchConfig::handicap_ns`]).
    pub handicap_ns: u64,
    /// Overload mode: a 2:1 enqueue-biased mix driven through
    /// `try_enqueue`, so bounded backends report **drops** and unbounded
    /// ones report **queue growth** (`backlog`) instead of the balanced
    /// alternating mix.
    pub overload: bool,
}

impl Default for OpenLoopConfig {
    fn default() -> Self {
        Self {
            threads: 2,
            rate_ops_per_sec: 100_000.0,
            total_ops: 40_000,
            schedule: ArrivalSchedule::FixedRate,
            invocations: 5,
            pin: true,
            seed: 0xC0FFEE,
            segment_ceiling: None,
            handicap_ns: 0,
            overload: false,
        }
    }
}

/// Result of one open-loop iteration.
#[derive(Debug, Clone)]
pub struct OpenLoopIteration {
    /// Coordinated-omission-free op latencies (`completion − intended`).
    pub latency: Histogram,
    /// Per-path latency decomposition (empty unless the backend reports
    /// op samples — the wait-free queue built with `op-sample`).
    pub attribution: Attribution,
    /// Completed ops per second over the iteration wall time.
    pub achieved_rate: f64,
    /// Largest generator lag behind the schedule (actual − intended start).
    pub max_lag_ns: u64,
    /// Generator lag at the final arrival — the saturation signal: a
    /// stable system ends near zero, a saturated one ends with lag
    /// comparable to the whole intended span.
    pub end_lag_ns: u64,
    /// Intended makespan of the schedule (last arrival offset).
    pub intended_span_ns: u64,
    /// Rejected `try_enqueue`s (overload mode on bounded backends).
    pub drops: u64,
    /// Enqueues delivered minus dequeues delivered: end-of-run queue
    /// length, the open-system queue-growth signal.
    pub backlog: i64,
}

impl OpenLoopIteration {
    /// Whether the generator could not keep up with its own schedule:
    /// final lag above 10% of the intended makespan.
    pub fn saturated(&self) -> bool {
        self.end_lag_ns as f64 > self.intended_span_ns as f64 * 0.10
    }
}

/// Waits until `intended` ns after `start`, sleeping for coarse waits and
/// spinning the final stretch; returns the actual offset when the wait
/// ended. Never waits when already past due (the lag is *measured*, not
/// absorbed — that is the whole point of the open loop).
#[inline]
fn wait_until(start: Instant, intended: u64) -> u64 {
    let mut now = start.elapsed().as_nanos() as u64;
    while now < intended {
        let remaining = intended - now;
        if remaining > 500_000 {
            // Leave a spin margin: sleep wakeups overshoot by tens of µs.
            std::thread::sleep(Duration::from_nanos(remaining - 200_000));
        } else {
            std::hint::spin_loop();
        }
        now = start.elapsed().as_nanos() as u64;
    }
    now
}

/// Runs one open-loop iteration against `q`: every generator thread
/// pre-computes its arrival schedule, then executes one op per arrival at
/// (or as soon as possible after) its intended start, alternating
/// enqueue/dequeue (or the 2:1 overload mix). Latency is recorded against
/// the *intended* start; the per-op path sample, when the backend exposes
/// one, is recorded into the attribution.
pub fn run_open_loop_iteration<Q: BenchQueue>(
    q: &Q,
    cfg: &OpenLoopConfig,
    delay: &SpinDelay,
    round: u64,
) -> OpenLoopIteration {
    let threads = cfg.threads.max(1);
    let per_thread = (cfg.total_ops / threads as u64).max(2) as usize;
    let per_thread_rate = cfg.rate_ops_per_sec / threads as f64;
    let barrier = Barrier::new(threads);

    struct ThreadOut {
        latency: Histogram,
        attribution: Attribution,
        enq_done: u64,
        deq_done: u64,
        drops: u64,
        max_lag_ns: u64,
        end_lag_ns: u64,
        intended_span_ns: u64,
        wall_ns: u64,
    }

    let mut outs: Vec<Option<ThreadOut>> = (0..threads).map(|_| None).collect();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let q = &q;
                let barrier = &barrier;
                let cfg = &cfg;
                s.spawn(move || {
                    if cfg.pin {
                        topology::pin_to_cpu(t);
                    }
                    // The schedule is fully materialized *before* the run.
                    let arrivals = gen_arrivals(
                        cfg.schedule,
                        per_thread_rate,
                        per_thread,
                        cfg.seed ^ round.wrapping_mul(0x9E37) ^ ((t as u64) << 32),
                    );
                    let mut h = q.register();
                    let tag = ((t as u64 + 1) << 40) | 1;
                    let mut counter = 0u64;
                    let mut o = ThreadOut {
                        latency: Histogram::new(),
                        attribution: Attribution::new(),
                        enq_done: 0,
                        deq_done: 0,
                        drops: 0,
                        max_lag_ns: 0,
                        end_lag_ns: 0,
                        intended_span_ns: *arrivals.last().unwrap_or(&0),
                        wall_ns: 0,
                    };

                    barrier.wait();
                    let start = Instant::now();
                    for (i, &intended) in arrivals.iter().enumerate() {
                        let actual = wait_until(start, intended);
                        let lag = actual.saturating_sub(intended);
                        // Overload mode: 2 enqueues per dequeue, fallible.
                        let is_enq = if cfg.overload { i % 3 != 2 } else { i % 2 == 0 };
                        if is_enq {
                            counter += 1;
                            if cfg.overload {
                                match h.try_enqueue(tag + counter) {
                                    Ok(()) => o.enq_done += 1,
                                    Err(_) => o.drops += 1,
                                }
                            } else {
                                h.enqueue(tag + counter);
                                o.enq_done += 1;
                            }
                        } else if h.dequeue().is_some() {
                            o.deq_done += 1;
                        }
                        if cfg.handicap_ns > 0 {
                            // Inside the measured latency, like the op.
                            delay.wait_ns(cfg.handicap_ns);
                        }
                        let done = start.elapsed().as_nanos() as u64;
                        let ns = done.saturating_sub(intended).max(1);
                        o.latency.record(ns);
                        if let Some(sample) = h.last_op_sample() {
                            o.attribution.record(&sample, ns);
                        }
                        o.max_lag_ns = o.max_lag_ns.max(lag);
                        o.end_lag_ns = lag;
                    }
                    o.wall_ns = start.elapsed().as_nanos() as u64;
                    o
                })
            })
            .collect();
        for (t, h) in handles.into_iter().enumerate() {
            outs[t] = Some(h.join().expect("open-loop thread panicked"));
        }
    });

    let mut latency = Histogram::new();
    let mut attribution = Attribution::new();
    let (mut enq, mut deq, mut drops) = (0u64, 0u64, 0u64);
    let (mut max_lag, mut end_lag, mut span, mut wall) = (0u64, 0u64, 0u64, 0u64);
    for o in outs.into_iter().flatten() {
        latency.merge(&o.latency);
        attribution.merge(&o.attribution);
        enq += o.enq_done;
        deq += o.deq_done;
        drops += o.drops;
        max_lag = max_lag.max(o.max_lag_ns);
        end_lag = end_lag.max(o.end_lag_ns);
        span = span.max(o.intended_span_ns);
        wall = wall.max(o.wall_ns);
    }
    let ops = latency.count();
    OpenLoopIteration {
        latency,
        attribution,
        achieved_rate: ops as f64 / (wall.max(1) as f64 / 1e9),
        max_lag_ns: max_lag,
        end_lag_ns: end_lag,
        intended_span_ns: span.max(1),
        drops,
        backlog: enq as i64 - deq as i64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfq_baselines::MutexQueue;
    use wfqueue::RawQueue;

    fn tiny(workload: Workload, threads: usize) -> BenchConfig {
        BenchConfig {
            threads,
            total_ops: 20_000,
            workload,
            delay_ns: (0, 0),
            pin: false,
            ..Default::default()
        }
    }

    #[test]
    fn pairs_iteration_reports_positive_throughput() {
        let q = <RawQueue as BenchQueue>::new();
        let delay = SpinDelay::calibrate();
        let mops = run_iteration(&q, &tiny(Workload::Pairs, 1), &delay, 0);
        assert!(mops > 0.0);
    }

    #[test]
    fn fifty_iteration_runs_multithreaded() {
        let q = <MutexQueue as BenchQueue>::new();
        let delay = SpinDelay::calibrate();
        let mops = run_iteration(&q, &tiny(Workload::FiftyEnqueues, 3), &delay, 1);
        assert!(mops > 0.0);
    }

    #[test]
    fn delay_exclusion_keeps_throughput_sane() {
        // With a large injected delay, excluded throughput should still be
        // within an order of magnitude of the no-delay run (not collapsed).
        let delay = SpinDelay::calibrate();
        let q = <MutexQueue as BenchQueue>::new();
        let no_delay = run_iteration(&q, &tiny(Workload::Pairs, 1), &delay, 2);
        let q2 = <MutexQueue as BenchQueue>::new();
        let mut cfg = tiny(Workload::Pairs, 1);
        cfg.total_ops = 4_000;
        cfg.delay_ns = (500, 1000);
        let with_delay = run_iteration(&q2, &cfg, &delay, 2);
        assert!(
            with_delay > no_delay / 20.0,
            "delay exclusion broken: {with_delay} vs {no_delay}"
        );
    }

    #[test]
    fn workload_names() {
        assert_eq!(Workload::Pairs.name(), "enqueue-dequeue pairs");
        assert_eq!(Workload::FiftyEnqueues.name(), "50%-enqueues");
        assert_eq!(Workload::BatchPairs(8).name(), "batched pairs");
        assert_eq!(Workload::BatchPairs(8).batch_width(), 8);
        assert_eq!(Workload::BatchPairs(0).batch_width(), 1, "width clamps");
        assert_eq!(Workload::Pairs.batch_width(), 1);
    }

    #[test]
    fn batch_pairs_iteration_runs_on_native_and_fallback_queues() {
        let delay = SpinDelay::calibrate();
        let q = <RawQueue as BenchQueue>::new();
        let mops = run_iteration(&q, &tiny(Workload::BatchPairs(8), 2), &delay, 3);
        assert!(mops > 0.0);
        let s = q.stats();
        assert!(s.enq_batches > 0, "native batch path must be exercised");
        let q2 = <MutexQueue as BenchQueue>::new();
        let mops = run_iteration(&q2, &tiny(Workload::BatchPairs(8), 2), &delay, 3);
        assert!(mops > 0.0, "fallback loop path must work too");
    }

    #[test]
    fn handicap_is_not_work_excluded() {
        // A large per-op handicap must show up in the reported throughput
        // (this is what lets CI manufacture a certain regression), whereas
        // the same magnitude of `delay_ns` would be excluded.
        let delay = SpinDelay::calibrate();
        let q = <MutexQueue as BenchQueue>::new();
        let mut cfg = tiny(Workload::Pairs, 1);
        cfg.total_ops = 4_000;
        let clean = run_iteration(&q, &cfg, &delay, 4);
        cfg.handicap_ns = 5_000;
        let q2 = <MutexQueue as BenchQueue>::new();
        let handicapped = run_iteration(&q2, &cfg, &delay, 4);
        assert!(
            handicapped < clean / 2.0,
            "handicap must slow measured throughput: {handicapped} vs {clean}"
        );
    }

    #[test]
    fn config_presets() {
        assert_eq!(BenchConfig::paper(Workload::Pairs).total_ops, 10_000_000);
        assert!(BenchConfig::quick(Workload::Pairs).total_ops < 1_000_000);
    }

    // ------------------------------------------------------------------
    // Open-loop engine
    // ------------------------------------------------------------------

    #[test]
    fn schedules_are_nondecreasing_and_deterministic() {
        for sched in [
            ArrivalSchedule::FixedRate,
            ArrivalSchedule::Poisson,
            ArrivalSchedule::Bursty,
        ] {
            let a = gen_arrivals(sched, 1e6, 500, 42);
            let b = gen_arrivals(sched, 1e6, 500, 42);
            assert_eq!(a, b, "{} must be seed-deterministic", sched.name());
            assert!(
                a.windows(2).all(|w| w[0] <= w[1]),
                "{} arrivals must be nondecreasing",
                sched.name()
            );
            assert_eq!(a.len(), 500);
        }
        // Different seeds change the Poisson draw but not the fixed grid.
        assert_ne!(
            gen_arrivals(ArrivalSchedule::Poisson, 1e6, 100, 1),
            gen_arrivals(ArrivalSchedule::Poisson, 1e6, 100, 2)
        );
        assert_eq!(
            gen_arrivals(ArrivalSchedule::FixedRate, 1e6, 100, 1),
            gen_arrivals(ArrivalSchedule::FixedRate, 1e6, 100, 2)
        );
    }

    #[test]
    fn schedules_hit_the_offered_rate_on_average() {
        // n arrivals at rate r must span ~n/r seconds for every shape.
        // (n is large enough that Bursty completes several on/off cycles —
        // its average-rate property only holds across whole cycles.)
        let n = 40_000usize;
        let rate = 2e6; // 2 Mops/s → 500 ns mean gap → span ~20 ms
        for sched in [
            ArrivalSchedule::FixedRate,
            ArrivalSchedule::Poisson,
            ArrivalSchedule::Bursty,
        ] {
            let a = gen_arrivals(sched, rate, n, 7);
            let span = *a.last().unwrap() as f64;
            let expect = n as f64 / rate * 1e9;
            assert!(
                span > expect * 0.8 && span < expect * 1.3,
                "{}: span {span} vs expected {expect}",
                sched.name()
            );
        }
    }

    #[test]
    fn bursty_schedule_has_silent_phases() {
        let a = gen_arrivals(ArrivalSchedule::Bursty, 1e6, 5_000, 0);
        // No arrival may land in an off phase [PHASE, 2·PHASE) of its cycle.
        assert!(a.iter().all(|&t| (t % (2 * BURST_PHASE_NS)) < BURST_PHASE_NS));
        // And the on-phase arrival spacing is twice the offered rate.
        let on_gaps: Vec<u64> = a
            .windows(2)
            .filter(|w| w[1] - w[0] < BURST_PHASE_NS)
            .map(|w| w[1] - w[0])
            .collect();
        let mean_gap = on_gaps.iter().sum::<u64>() as f64 / on_gaps.len() as f64;
        assert!((mean_gap - 500.0).abs() < 5.0, "on-phase gap {mean_gap}");
    }

    #[test]
    fn schedule_names_roundtrip() {
        for sched in [
            ArrivalSchedule::FixedRate,
            ArrivalSchedule::Poisson,
            ArrivalSchedule::Bursty,
        ] {
            assert_eq!(ArrivalSchedule::parse(sched.name()), Some(sched));
        }
        assert_eq!(ArrivalSchedule::parse("nope"), None);
    }

    fn open_cfg(threads: usize) -> OpenLoopConfig {
        OpenLoopConfig {
            threads,
            rate_ops_per_sec: 2e6, // far under closed-loop capacity
            total_ops: 4_000,
            invocations: 1,
            pin: false,
            ..Default::default()
        }
    }

    #[test]
    fn open_loop_iteration_records_one_latency_per_arrival() {
        let q = <RawQueue as BenchQueue>::new();
        let delay = SpinDelay::calibrate();
        let cfg = open_cfg(2);
        let it = run_open_loop_iteration(&q, &cfg, &delay, 0);
        let expect = (cfg.total_ops / 2).max(2) * 2;
        assert_eq!(it.latency.count(), expect, "one sample per arrival");
        assert!(it.achieved_rate > 0.0);
        assert!(it.intended_span_ns > 0);
        assert_eq!(it.drops, 0, "balanced mode never drops");
        assert!(it.attribution.counts_are_sound());
    }

    #[test]
    fn open_loop_overload_mode_grows_backlog() {
        // 2:1 enqueue bias on an unbounded queue: no drops, positive
        // backlog of about a third of the ops.
        let q = <MutexQueue as BenchQueue>::new();
        let delay = SpinDelay::calibrate();
        let mut cfg = open_cfg(1);
        cfg.overload = true;
        let it = run_open_loop_iteration(&q, &cfg, &delay, 1);
        assert_eq!(it.drops, 0);
        assert!(
            it.backlog > it.latency.count() as i64 / 5,
            "overload must grow the queue: backlog {}",
            it.backlog
        );
    }

    #[test]
    fn open_loop_handicap_inflates_measured_latency() {
        let delay = SpinDelay::calibrate();
        let mut cfg = open_cfg(1);
        cfg.total_ops = 2_000;
        let q = <MutexQueue as BenchQueue>::new();
        let clean = run_open_loop_iteration(&q, &cfg, &delay, 2);
        cfg.handicap_ns = 20_000;
        // Slow the offered rate so the handicap cannot saturate the run.
        cfg.rate_ops_per_sec = 20_000.0;
        let q2 = <MutexQueue as BenchQueue>::new();
        let slow = run_open_loop_iteration(&q2, &cfg, &delay, 2);
        assert!(
            slow.latency.quantile(0.5) > clean.latency.quantile(0.5) + 5_000,
            "handicap must land in measured latency: {} vs {}",
            slow.latency.quantile(0.5),
            clean.latency.quantile(0.5)
        );
    }

    #[test]
    fn open_loop_saturation_is_detected_at_impossible_rates() {
        // 1 ns between arrivals with a 5 µs handicap per op: the generator
        // cannot keep up; the final lag must dominate the intended span.
        let q = <MutexQueue as BenchQueue>::new();
        let delay = SpinDelay::calibrate();
        let mut cfg = open_cfg(1);
        cfg.total_ops = 2_000;
        cfg.rate_ops_per_sec = 1e9;
        cfg.handicap_ns = 5_000;
        let it = run_open_loop_iteration(&q, &cfg, &delay, 3);
        assert!(it.saturated(), "end lag {} span {}", it.end_lag_ns, it.intended_span_ns);
        assert!(it.max_lag_ns >= it.end_lag_ns);
    }
}
