//! The paper's two benchmark workloads (§5.1) and one timed iteration.
//!
//! - **enqueue–dequeue pairs**: each thread alternates enqueue and dequeue;
//!   the benchmark performs `total_ops / 2` pairs split evenly over threads.
//! - **50% enqueues**: each thread flips a uniform coin per operation.
//!
//! Between operations every thread performs a random 50–100 ns spin "work"
//! to break up long runs (one thread monopolizing the queue from its own
//! L1); the spin time is excluded from the reported throughput exactly as
//! in the paper.

use std::sync::Barrier;
use std::time::Instant;

use wfq_baselines::{BenchQueue, QueueHandle};
use wfq_sync::delay::SpinDelay;
use wfq_sync::XorShift64;

use crate::topology;

/// Which workload to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// Enqueue–dequeue pairs.
    Pairs,
    /// Enqueue or dequeue with equal odds per operation.
    FiftyEnqueues,
    /// Enqueue–dequeue pairs in batches of the given width: each thread
    /// alternates one `enqueue_batch` of `k` values with one
    /// `dequeue_batch` of up to `k` (one FAA per `k` operations on the
    /// wait-free queue, the element loop on baselines without a native
    /// batch path). An under-delivering dequeue batch leaves the surplus
    /// for later rounds, mirroring how `Pairs` tolerates `None`.
    BatchPairs(u32),
}

impl Workload {
    /// Paper-style display name (batch width reported separately).
    pub fn name(self) -> &'static str {
        match self {
            Workload::Pairs => "enqueue-dequeue pairs",
            Workload::FiftyEnqueues => "50%-enqueues",
            Workload::BatchPairs(_) => "batched pairs",
        }
    }

    /// The batch width this workload claims per FAA (1 for the
    /// element-wise workloads).
    pub fn batch_width(self) -> u32 {
        match self {
            Workload::BatchPairs(k) => k.max(1),
            _ => 1,
        }
    }
}

/// Full benchmark configuration (defaults reproduce the paper, with
/// `total_ops` left to the caller to scale to the host).
#[derive(Debug, Clone)]
pub struct BenchConfig {
    /// Concurrency level.
    pub threads: usize,
    /// Operations per iteration, split evenly over threads (paper: 10^7).
    pub total_ops: u64,
    /// Workload shape.
    pub workload: Workload,
    /// Inclusive bounds of the inter-operation "work" in nanoseconds
    /// (paper: 50–100; set to (0, 0) to disable).
    pub delay_ns: (u64, u64),
    /// Maximum iterations per invocation (paper: 20).
    pub max_iterations: usize,
    /// Steady-state window length (paper: 5).
    pub window: usize,
    /// Steady-state COV threshold (paper: 0.02).
    pub cov_threshold: f64,
    /// Number of invocations (paper: 10).
    pub invocations: usize,
    /// Pin threads compactly to hardware threads.
    pub pin: bool,
    /// Base PRNG seed (per-thread streams are derived from it).
    pub seed: u64,
    /// Bounded-memory mode: cap the queue at this many live segments
    /// (honored only by queues with [`BenchQueue::HONORS_CEILING`]).
    pub segment_ceiling: Option<u64>,
    /// Synthetic per-operation slowdown in nanoseconds, spun *inside* the
    /// measured window — unlike `delay_ns` it is **not** work-excluded, so
    /// it lands in the reported throughput. Exists so `wfq-regress` can be
    /// integration-tested against a guaranteed regression (CI injects a few
    /// hundred ns here and asserts the gate trips).
    pub handicap_ns: u64,
}

impl Default for BenchConfig {
    fn default() -> Self {
        Self {
            threads: 1,
            total_ops: 1_000_000,
            workload: Workload::Pairs,
            delay_ns: (50, 100),
            max_iterations: 20,
            window: 5,
            cov_threshold: 0.02,
            invocations: 10,
            pin: true,
            seed: 0xC0FFEE,
            segment_ceiling: None,
            handicap_ns: 0,
        }
    }
}

impl BenchConfig {
    /// The paper's exact parameters (10^7 ops — slow on small hosts).
    pub fn paper(workload: Workload) -> Self {
        Self {
            total_ops: 10_000_000,
            workload,
            ..Self::default()
        }
    }

    /// A configuration scaled for quick runs (CI, laptops).
    pub fn quick(workload: Workload) -> Self {
        Self {
            total_ops: 200_000,
            workload,
            max_iterations: 8,
            invocations: 3,
            ..Self::default()
        }
    }
}

/// Runs one timed iteration of the workload against `q`; returns
/// throughput in Mops/s with the injected work time excluded.
///
/// Values enqueued are `thread_tag | counter` and therefore unique, so the
/// same workload drivers double as checker workloads.
pub fn run_iteration<Q: BenchQueue>(q: &Q, cfg: &BenchConfig, delay: &SpinDelay, round: u64) -> f64 {
    let threads = cfg.threads.max(1);
    let per_thread = (cfg.total_ops / threads as u64).max(2);
    let barrier = Barrier::new(threads);
    // Per-thread effective (work-excluded) nanoseconds.
    let mut effective_ns = vec![0u64; threads];

    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let q = &q;
                let barrier = &barrier;
                let cfg = &cfg;
                s.spawn(move || {
                    if cfg.pin {
                        topology::pin_to_cpu(t);
                    }
                    let mut h = q.register();
                    let mut rng =
                        XorShift64::for_stream(cfg.seed ^ round.wrapping_mul(0x9E37), t as u64);
                    // Unique-value tag: thread in the top bits, 1-based
                    // counter below. Stays clear of 0 and u64::MAX.
                    let tag = ((t as u64 + 1) << 40) | 1;
                    let mut counter = 0u64;
                    let (dlo, dhi) = cfg.delay_ns;
                    let handicap = cfg.handicap_ns;
                    let mut delay_ns_total = 0u64;
                    let spin = |rng: &mut XorShift64, total: &mut u64| {
                        if handicap > 0 {
                            // Deliberately not added to `total`: the
                            // handicap must survive work exclusion.
                            delay.wait_ns(handicap);
                        }
                        if dhi > 0 {
                            let ns = rng.next_in(dlo, dhi);
                            *total += ns;
                            delay.wait_ns(ns);
                        }
                    };

                    barrier.wait();
                    let start = Instant::now();
                    match cfg.workload {
                        Workload::Pairs => {
                            let pairs = per_thread / 2;
                            for _ in 0..pairs {
                                counter += 1;
                                h.enqueue(tag + counter);
                                spin(&mut rng, &mut delay_ns_total);
                                let _ = h.dequeue();
                                spin(&mut rng, &mut delay_ns_total);
                            }
                        }
                        Workload::FiftyEnqueues => {
                            for _ in 0..per_thread {
                                if rng.coin() {
                                    counter += 1;
                                    h.enqueue(tag + counter);
                                } else {
                                    let _ = h.dequeue();
                                }
                                spin(&mut rng, &mut delay_ns_total);
                            }
                        }
                        Workload::BatchPairs(k) => {
                            let k = k.max(1) as usize;
                            let rounds = (per_thread / (2 * k as u64)).max(1);
                            let mut batch = Vec::with_capacity(k);
                            let mut out = Vec::with_capacity(k);
                            for _ in 0..rounds {
                                batch.clear();
                                for _ in 0..k {
                                    counter += 1;
                                    batch.push(tag + counter);
                                }
                                h.enqueue_batch(&batch);
                                spin(&mut rng, &mut delay_ns_total);
                                out.clear();
                                let _ = h.dequeue_batch(&mut out, k);
                                spin(&mut rng, &mut delay_ns_total);
                            }
                        }
                    }
                    let elapsed = start.elapsed().as_nanos() as u64;
                    // Work exclusion with a sanity floor: if the calibrated
                    // spin undershot (preempted calibration), subtracting
                    // the intended delay could erase nearly all of the
                    // elapsed time and report absurd throughput. Queue
                    // operations always cost a nontrivial share of the
                    // delay-inclusive runtime, so floor at elapsed / 20.
                    elapsed
                        .saturating_sub(delay_ns_total)
                        .max(elapsed / 20)
                        .max(1)
                })
            })
            .collect();
        for (t, h) in handles.into_iter().enumerate() {
            effective_ns[t] = h.join().expect("benchmark thread panicked");
        }
    });

    // Throughput over the slowest thread's effective time — every thread
    // performed per_thread ops (rounded down to pairs for Pairs).
    let ops_done: u64 = match cfg.workload {
        Workload::Pairs => (per_thread / 2) * 2 * threads as u64,
        Workload::FiftyEnqueues => per_thread * threads as u64,
        Workload::BatchPairs(k) => {
            let k = k.max(1) as u64;
            (per_thread / (2 * k)).max(1) * 2 * k * threads as u64
        }
    };
    let max_ns = *effective_ns.iter().max().unwrap() as f64;
    ops_done as f64 / max_ns * 1e3 // ops/ns → Mops/s
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfq_baselines::MutexQueue;
    use wfqueue::RawQueue;

    fn tiny(workload: Workload, threads: usize) -> BenchConfig {
        BenchConfig {
            threads,
            total_ops: 20_000,
            workload,
            delay_ns: (0, 0),
            pin: false,
            ..Default::default()
        }
    }

    #[test]
    fn pairs_iteration_reports_positive_throughput() {
        let q = <RawQueue as BenchQueue>::new();
        let delay = SpinDelay::calibrate();
        let mops = run_iteration(&q, &tiny(Workload::Pairs, 1), &delay, 0);
        assert!(mops > 0.0);
    }

    #[test]
    fn fifty_iteration_runs_multithreaded() {
        let q = <MutexQueue as BenchQueue>::new();
        let delay = SpinDelay::calibrate();
        let mops = run_iteration(&q, &tiny(Workload::FiftyEnqueues, 3), &delay, 1);
        assert!(mops > 0.0);
    }

    #[test]
    fn delay_exclusion_keeps_throughput_sane() {
        // With a large injected delay, excluded throughput should still be
        // within an order of magnitude of the no-delay run (not collapsed).
        let delay = SpinDelay::calibrate();
        let q = <MutexQueue as BenchQueue>::new();
        let no_delay = run_iteration(&q, &tiny(Workload::Pairs, 1), &delay, 2);
        let q2 = <MutexQueue as BenchQueue>::new();
        let mut cfg = tiny(Workload::Pairs, 1);
        cfg.total_ops = 4_000;
        cfg.delay_ns = (500, 1000);
        let with_delay = run_iteration(&q2, &cfg, &delay, 2);
        assert!(
            with_delay > no_delay / 20.0,
            "delay exclusion broken: {with_delay} vs {no_delay}"
        );
    }

    #[test]
    fn workload_names() {
        assert_eq!(Workload::Pairs.name(), "enqueue-dequeue pairs");
        assert_eq!(Workload::FiftyEnqueues.name(), "50%-enqueues");
        assert_eq!(Workload::BatchPairs(8).name(), "batched pairs");
        assert_eq!(Workload::BatchPairs(8).batch_width(), 8);
        assert_eq!(Workload::BatchPairs(0).batch_width(), 1, "width clamps");
        assert_eq!(Workload::Pairs.batch_width(), 1);
    }

    #[test]
    fn batch_pairs_iteration_runs_on_native_and_fallback_queues() {
        let delay = SpinDelay::calibrate();
        let q = <RawQueue as BenchQueue>::new();
        let mops = run_iteration(&q, &tiny(Workload::BatchPairs(8), 2), &delay, 3);
        assert!(mops > 0.0);
        let s = q.stats();
        assert!(s.enq_batches > 0, "native batch path must be exercised");
        let q2 = <MutexQueue as BenchQueue>::new();
        let mops = run_iteration(&q2, &tiny(Workload::BatchPairs(8), 2), &delay, 3);
        assert!(mops > 0.0, "fallback loop path must work too");
    }

    #[test]
    fn handicap_is_not_work_excluded() {
        // A large per-op handicap must show up in the reported throughput
        // (this is what lets CI manufacture a certain regression), whereas
        // the same magnitude of `delay_ns` would be excluded.
        let delay = SpinDelay::calibrate();
        let q = <MutexQueue as BenchQueue>::new();
        let mut cfg = tiny(Workload::Pairs, 1);
        cfg.total_ops = 4_000;
        let clean = run_iteration(&q, &cfg, &delay, 4);
        cfg.handicap_ns = 5_000;
        let q2 = <MutexQueue as BenchQueue>::new();
        let handicapped = run_iteration(&q2, &cfg, &delay, 4);
        assert!(
            handicapped < clean / 2.0,
            "handicap must slow measured throughput: {handicapped} vs {clean}"
        );
    }

    #[test]
    fn config_presets() {
        assert_eq!(BenchConfig::paper(Workload::Pairs).total_ops, 10_000_000);
        assert!(BenchConfig::quick(Workload::Pairs).total_ops < 1_000_000);
    }
}
