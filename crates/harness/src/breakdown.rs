//! Execution-path breakdown for the paper's Table 2.
//!
//! Table 2 runs the 50%-enqueues benchmark on the WF-0 configuration
//! (patience 0, maximizing slow-path pressure) at thread counts up to 4×
//! the hardware threads (oversubscription) and reports the percentage of
//! operations completed on each path. This module drives the wait-free
//! queue directly (the path counters live in `wfqueue::QueueStats`).

use std::sync::Barrier;

use wfq_baselines::{BenchQueue, QueueHandle};
use wfq_sync::delay::SpinDelay;
use wfq_sync::XorShift64;
use wfqueue::{Config, QueueStats, RawQueue};

use crate::topology;
use crate::workload::{BenchConfig, Workload};

/// One Table 2 column: thread count plus the three path percentages.
#[derive(Debug, Clone, PartialEq)]
pub struct Breakdown {
    /// Concurrency level.
    pub threads: usize,
    /// % of enqueues completed on the slow path.
    pub pct_slow_enq: f64,
    /// % of dequeues completed on the slow path.
    pub pct_slow_deq: f64,
    /// % of dequeues that returned EMPTY.
    pub pct_empty_deq: f64,
    /// Raw aggregated stats (for deeper inspection).
    pub stats: QueueStats,
}

/// Runs the 50%-enqueues workload — or its batched extension, where each
/// coin flip moves a whole `enqueue_batch`/`dequeue_batch` of width k —
/// on a fresh wait-free queue with the given patience and returns the
/// path breakdown.
pub fn run_breakdown(patience: u32, cfg: &BenchConfig) -> Breakdown {
    let mut config = Config::default().with_patience(patience);
    if let Some(c) = cfg.segment_ceiling {
        config = config.with_segment_ceiling(c);
    }
    let q = RawQueue::<1024>::with_config(config);
    drive(&q, cfg)
}

/// Runs the same Table 2 workload on any [`BenchQueue`] backend and
/// reports the path breakdown from its `stats()` counters. The WF queue's
/// patience knob has no trait-level equivalent — for a custom patience use
/// [`run_breakdown`]; backends with their own knobs (e.g. wCQ's patience)
/// run at their defaults here.
pub fn run_breakdown_on<Q: BenchQueue>(cfg: &BenchConfig) -> Breakdown {
    let q = Q::with_ceiling(cfg.segment_ceiling);
    drive(&q, cfg)
}

fn drive<Q: BenchQueue>(q: &Q, cfg: &BenchConfig) -> Breakdown {
    let batch = match cfg.workload {
        Workload::FiftyEnqueues => None,
        Workload::BatchPairs(k) => Some(k.max(1)),
        _ => panic!("Table 2 is defined on the 50%-enqueues benchmark"),
    };
    let delay = SpinDelay::calibrate();
    let threads = cfg.threads.max(1);
    let per_thread = (cfg.total_ops / threads as u64).max(1);
    let barrier = Barrier::new(threads);

    std::thread::scope(|s| {
        for t in 0..threads {
            let q = &q;
            let barrier = &barrier;
            let delay = &delay;
            let cfg = &cfg;
            s.spawn(move || {
                if cfg.pin {
                    topology::pin_to_cpu(t);
                }
                let mut h = q.register();
                let mut rng = XorShift64::for_stream(cfg.seed, t as u64);
                let tag = ((t as u64 + 1) << 40) | 1;
                let mut counter = 0;
                let (dlo, dhi) = cfg.delay_ns;
                barrier.wait();
                match batch {
                    None => {
                        for _ in 0..per_thread {
                            if rng.coin() {
                                counter += 1;
                                h.enqueue(tag + counter);
                            } else {
                                let _ = h.dequeue();
                            }
                            if dhi > 0 {
                                delay.wait_ns(rng.next_in(dlo, dhi));
                            }
                        }
                    }
                    Some(k) => {
                        let mut vals = vec![0u64; k as usize];
                        let mut out = Vec::with_capacity(k as usize);
                        for _ in 0..per_thread / u64::from(k) {
                            if rng.coin() {
                                for slot in vals.iter_mut() {
                                    counter += 1;
                                    *slot = tag + counter;
                                }
                                h.enqueue_batch(&vals);
                            } else {
                                out.clear();
                                let _ = h.dequeue_batch(&mut out, k as usize);
                            }
                            if dhi > 0 {
                                delay.wait_ns(rng.next_in(dlo, dhi));
                            }
                        }
                    }
                }
            });
        }
    });

    let stats = q.stats();
    Breakdown {
        threads,
        pct_slow_enq: stats.pct_slow_enq(),
        pct_slow_deq: stats.pct_slow_deq(),
        pct_empty_deq: stats.pct_empty_deq(),
        stats,
    }
}

/// Renders Table 2 as markdown, one column per thread count.
pub fn render_table2(rows: &[Breakdown]) -> String {
    let mut out = String::from("| # of threads |");
    for r in rows {
        out.push_str(&format!(" {} |", r.threads));
    }
    out.push_str("\n|---|");
    for _ in rows {
        out.push_str("---|");
    }
    out.push_str("\n| % of slow-path enqueues |");
    for r in rows {
        out.push_str(&format!(" {:.3} |", r.pct_slow_enq));
    }
    out.push_str("\n| % of slow-path dequeues |");
    for r in rows {
        out.push_str(&format!(" {:.3} |", r.pct_slow_deq));
    }
    out.push_str("\n| % of empty dequeues |");
    for r in rows {
        out.push_str(&format!(" {:.3} |", r.pct_empty_deq));
    }
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(threads: usize) -> BenchConfig {
        BenchConfig {
            threads,
            total_ops: 40_000,
            workload: Workload::FiftyEnqueues,
            delay_ns: (0, 0),
            pin: false,
            ..Default::default()
        }
    }

    #[test]
    fn breakdown_counts_all_operations() {
        let b = run_breakdown(0, &tiny(2));
        assert_eq!(b.stats.enqueues() + b.stats.dequeues(), 40_000);
        assert!(b.pct_slow_enq >= 0.0 && b.pct_slow_enq <= 100.0);
    }

    #[test]
    fn single_thread_has_no_slow_paths() {
        let b = run_breakdown(10, &tiny(1));
        assert_eq!(b.pct_slow_enq, 0.0);
        assert_eq!(b.pct_slow_deq, 0.0);
    }

    #[test]
    fn batched_breakdown_runs_the_batch_paths() {
        let mut cfg = tiny(2);
        cfg.workload = Workload::BatchPairs(4);
        let b = run_breakdown(0, &cfg);
        assert!(
            b.stats.enq_batches > 0 && b.stats.deq_batches > 0,
            "batched Table 2 never took the batch paths: {:?}",
            b.stats
        );
        assert!(b.pct_empty_deq >= 0.0 && b.pct_empty_deq <= 100.0);
    }

    #[test]
    fn generic_breakdown_counts_ring_backends() {
        // The ring backends count empty probes in `deq_empty`, disjoint
        // from the completed-dequeue counters (the workload stays far
        // below capacity, so no enqueue rejections here).
        let b = run_breakdown_on::<wfq_baselines::Scq>(&tiny(2));
        assert_eq!(
            b.stats.enqueues() + b.stats.dequeues() + b.stats.deq_empty,
            40_000,
            "SCQ breakdown lost operations: {:?}",
            b.stats
        );
        assert_eq!(b.pct_slow_enq, 0.0, "SCQ has no slow path");
        let w = run_breakdown_on::<wfq_baselines::Wcq>(&tiny(2));
        assert_eq!(
            w.stats.enqueues() + w.stats.dequeues() + w.stats.deq_empty,
            40_000,
            "wCQ breakdown lost operations: {:?}",
            w.stats
        );
    }

    #[test]
    #[should_panic(expected = "50%-enqueues")]
    fn rejects_wrong_workload() {
        let mut cfg = tiny(1);
        cfg.workload = Workload::Pairs;
        run_breakdown(0, &cfg);
    }

    #[test]
    fn table_renders_all_rows() {
        let b = run_breakdown(0, &tiny(2));
        let md = render_table2(&[b]);
        assert!(md.contains("% of slow-path enqueues"));
        assert!(md.contains("% of slow-path dequeues"));
        assert!(md.contains("% of empty dequeues"));
    }
}
