//! Statistically rigorous benchmark harness reproducing the paper's
//! evaluation methodology (§5.1).
//!
//! The paper follows Georges et al. (OOPSLA 2007):
//!
//! 1. **Iterations**: within one invocation, run the benchmark up to 20
//!    times; detect *steady state* when the coefficient of variation of the
//!    most recent 5 iterations drops below 0.02 (else take the 5-iteration
//!    window with the lowest COV); report the mean of that window.
//! 2. **Invocations**: repeat for 10 invocations (here: fresh queue + fresh
//!    threads per invocation; the paper used fresh processes — see
//!    DESIGN.md substitutions) and report the mean with a 95% confidence
//!    interval from Student's t distribution (n − 1 degrees of freedom).
//! 3. **Workloads**: *enqueue–dequeue pairs* and *50% enqueues*, with a
//!    random 50–100 ns spin "work" between operations whose time is
//!    excluded from the reported throughput, and threads pinned compactly
//!    to hardware threads.
//!
//! The entry points are [`run_series`] (one queue, a sweep of thread
//! counts → a Figure 2 line) and [`breakdown::run_breakdown`] (Table 2).

#![warn(missing_docs)]

pub mod attribution;
pub mod breakdown;
pub mod cycles;
pub mod histogram;
pub mod json;
pub mod measure;
pub mod obs;
pub mod regress;
pub mod report;
pub mod spans;
pub mod stats;
pub mod topology;
pub mod workload;

pub use attribution::{Attribution, OpClass};
pub use cycles::{
    attribute_gap, compare_cycles, cycles_trajectory_line, parse_cycles_snapshot,
    render_cycles_json, render_cycles_prometheus, CyclesPoint, CyclesSeries, CyclesSnapshot,
    GapAttribution, PerfMode, PhaseCost,
};
pub use measure::{measure_open_loop, measure_queue, Measurement, OpenLoopMeasurement};
pub use obs::{dump_chrome_trace, render_latency_prometheus, render_prometheus, write_metrics};
pub use report::{
    render_csv, render_json, render_latency_json, render_markdown, LatencyPoint, LatencySeries,
    Series, SeriesPoint,
};
pub use workload::{ArrivalSchedule, BenchConfig, OpenLoopConfig, Workload};

use wfq_baselines::BenchQueue;

/// Runs a full thread sweep for one queue type: each entry of `threads` is
/// measured with the paper's full invocation/iteration protocol.
pub fn run_series<Q: BenchQueue>(threads: &[usize], cfg: &BenchConfig) -> Series {
    let mut points = Vec::new();
    for &t in threads {
        let mut cfg_t = cfg.clone();
        cfg_t.threads = t;
        let m = measure_queue::<Q>(&cfg_t);
        points.push(SeriesPoint {
            threads: t,
            mean_mops: m.mean,
            ci_half: m.ci_half,
        });
    }
    Series {
        name: Q::NAME.to_string(),
        points,
    }
}
