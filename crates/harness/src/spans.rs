//! Offline help-chain reconstruction over drained flight-recorder traces.
//!
//! The paper's wait-freedom argument lives in the helping protocol
//! (Listings 2–4): a slow-path request is published into the help ring and
//! *anyone* — the requester, a round-robin helper, a dequeuer scanning
//! candidates — may move it forward. The flight recorder (PR 2) captures
//! those steps as per-thread point events; this module stitches the
//! per-thread rings back into **causal episodes** using the op id every
//! slow-path event now carries (the request's publish id — the requester's
//! first failed FAA cell index, unique per side because FAA indices are
//! never reused).
//!
//! One episode = one slow-path span (`EnqSlowEnter..EnqSlowExit` or
//! `DeqSlowEnter..DeqSlowExit`) plus every help event any recorder emitted
//! for the same `(side, op)` — the help-chain tree "requester →
//! helper(s) → completer". On top of the trees the report aggregates the
//! numbers the paper's §5.2 discussion reasons about qualitatively:
//!
//! - **help-ring residency**: how long each request stayed published
//!   (the span duration), as a log-bucketed [`Histogram`] with percentiles;
//! - **helper latency**: how long after publication each *cross-thread*
//!   hop landed;
//! - **max chain depth**: requester counts 1; a hop from another thread
//!   that was itself inside a slow-path span at that moment extends the
//!   chain through that thread's own episode (cycle-guarded recursion).
//!
//! Reconstruction invariants (asserted by the integration tests, tolerated
//! degradations in parentheses): spans on one recorder pair enter→exit
//! with equal op ids and nonnegative duration (an enter lost to ring wrap
//! leaves an orphan exit and vice versa — counted, not fatal); a hop's op
//! id matches its episode's; hops never precede the span open by more than
//! the clock skew of the shared anchor (cross-thread help *can* land after
//! the requester's exit — the exit CAS and the helper's record are not one
//! atomic step — so the episode window is `[start, end + slack]`).

use wfq_obs::{EventKind, HandleTrace};

use crate::histogram::Histogram;

/// Which FAA index space an op id lives in. Enqueue and dequeue requests
/// draw their publish ids from the independent `T` and `H` counters, so an
/// op id alone is ambiguous; every event kind implies its side.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Side {
    /// Enqueue-side episode (op ids are `T` FAA indices).
    Enq,
    /// Dequeue-side episode (op ids are `H` FAA indices).
    Deq,
}

/// One slow-path episode: a matched enter/exit pair on one recorder.
#[derive(Debug, Clone)]
pub struct SlowSpan {
    /// Recorder (thread) that ran the slow path.
    pub recorder: u64,
    /// Which side the episode is on.
    pub side: Side,
    /// The request's publish id.
    pub op: u64,
    /// Span open (enter event timestamp), ns.
    pub start_ns: u64,
    /// Span close (exit event timestamp), ns.
    pub end_ns: u64,
    /// The cell the request was finally claimed for / announced at.
    pub final_cell: u64,
}

impl SlowSpan {
    /// Help-ring residency of this request.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

/// One help event another (or the same) recorder contributed to an episode.
#[derive(Debug, Clone)]
pub struct HelpHop {
    /// Recorder that emitted the help event.
    pub helper: u64,
    /// What the helper did (`HelpEnqCommit`, `HelpDeqAnnounce`, …).
    pub kind: EventKind,
    /// When, ns.
    pub ts_ns: u64,
    /// The help event's protocol argument (usually a cell index).
    pub arg: u64,
}

/// A reconstructed help-chain tree rooted at one slow-path episode.
#[derive(Debug, Clone)]
pub struct HelpChain {
    /// The requester's episode.
    pub span: SlowSpan,
    /// Every matching help event, requester's own included, time-ordered.
    pub hops: Vec<HelpHop>,
    /// Distinct recorders other than the requester that contributed a hop.
    pub helpers: Vec<u64>,
    /// Chain depth: 1 for an unhelped episode, 2 when another thread
    /// contributed, deeper when that helper was itself inside a slow-path
    /// episode at the moment it helped.
    pub depth: usize,
}

impl HelpChain {
    /// Whether more than one thread participated in this episode.
    pub fn is_multi_hop(&self) -> bool {
        !self.helpers.is_empty()
    }
}

/// The reconstruction result over one set of drained traces.
#[derive(Debug, Default)]
pub struct SpanReport {
    /// Every matched episode, time-ordered by span open.
    pub chains: Vec<HelpChain>,
    /// Span enters whose exit was never seen (ring wrap, thread died
    /// mid-operation, or the drain raced the operation).
    pub unmatched_enters: usize,
    /// Span exits whose enter was never seen (ring wrap).
    pub unmatched_exits: usize,
    /// Help-ring residency (span durations), ns.
    pub residency: Histogram,
    /// Publication → cross-thread hop latency, ns (one sample per hop from
    /// a recorder other than the requester).
    pub helper_latency: Histogram,
    /// Deepest reconstructed chain (0 when there are no episodes).
    pub max_chain_depth: usize,
}

/// Cross-thread help can land slightly after the requester's exit event:
/// the completing CAS and the helper's `record!` are separate steps. Hops
/// within this slack past the span close still belong to the episode.
const EPISODE_SLACK_NS: u64 = 1_000_000;

fn side_of_slow_enter(kind: EventKind) -> Option<Side> {
    match kind {
        EventKind::EnqSlowEnter => Some(Side::Enq),
        EventKind::DeqSlowEnter => Some(Side::Deq),
        _ => None,
    }
}

/// The episode side a *help* event contributes to, if any.
fn side_of_help(kind: EventKind) -> Option<Side> {
    match kind {
        EventKind::HelpEnqCommit => Some(Side::Enq),
        EventKind::HelpDeqEnter
        | EventKind::HelpDeqExit
        | EventKind::HelpDeqAnnounce
        | EventKind::HelpDeqComplete
        | EventKind::HazardAdopt => Some(Side::Deq),
        _ => None,
    }
}

/// Stitches drained traces into help-chain trees. Tolerates ring wrap
/// (unmatched spans are counted, not fatal), op-0 help events (a helper
/// whose claim CAS lost can no longer name the publish id), and traces
/// from unrelated traffic (episodes are keyed by `(side, op)`, and FAA
/// indices are never reused within one queue's lifetime).
pub fn reconstruct(traces: &[HandleTrace]) -> SpanReport {
    // Pass 1: pair slow-path spans per recorder (a stack, because the
    // nested HelpDeq span kinds are also enter/exit pairs but only the two
    // operation-level kinds root episodes), and collect help events.
    let mut spans: Vec<SlowSpan> = Vec::new();
    let mut hops: Vec<(Side, u64, HelpHop)> = Vec::new();
    let mut unmatched_enters = 0usize;
    let mut unmatched_exits = 0usize;

    for t in traces {
        // Open operation-level spans on this recorder (ops run one at a
        // time per handle, but keep a stack for wrap-damaged traces).
        let mut open: Vec<(Side, u64, u64)> = Vec::new(); // (side, op, start)
        for e in &t.events {
            if let Some(side) = side_of_slow_enter(e.kind) {
                open.push((side, e.op, e.ts_ns));
            } else if e.kind.is_progress_exit() {
                let want = match e.kind {
                    EventKind::EnqSlowExit => Side::Enq,
                    _ => Side::Deq,
                };
                match open.iter().rposition(|&(s, op, _)| s == want && op == e.op) {
                    Some(pos) => {
                        unmatched_enters += open.len() - pos - 1;
                        open.truncate(pos + 1);
                        let (side, op, start) = open.pop().unwrap();
                        spans.push(SlowSpan {
                            recorder: t.id,
                            side,
                            op,
                            start_ns: start,
                            // Pairing is by stream order (the ring is the
                            // truth), but raw TSC readings can step back a
                            // hair across vCPU migration; clamp so spans
                            // always have a nonnegative extent.
                            end_ns: e.ts_ns.max(start),
                            final_cell: e.arg,
                        });
                    }
                    None => unmatched_exits += 1,
                }
            }
            if let Some(side) = side_of_help(e.kind) {
                if e.op != 0 {
                    hops.push((
                        side,
                        e.op,
                        HelpHop {
                            helper: t.id,
                            kind: e.kind,
                            ts_ns: e.ts_ns,
                            arg: e.arg,
                        },
                    ));
                }
            }
        }
        unmatched_enters += open.len();
    }

    spans.sort_by_key(|s| s.start_ns);
    hops.sort_by_key(|&(_, _, ref h)| h.ts_ns);

    // Pass 2: attach hops to episodes by (side, op) within the episode
    // window, and build the chains.
    let mut report = SpanReport {
        chains: Vec::with_capacity(spans.len()),
        unmatched_enters,
        unmatched_exits,
        residency: Histogram::new(),
        helper_latency: Histogram::new(),
        max_chain_depth: 0,
    };
    for span in &spans {
        let window_end = span.end_ns + EPISODE_SLACK_NS;
        let mut chain_hops = Vec::new();
        let mut helpers = Vec::new();
        for (side, op, h) in &hops {
            if *side != span.side || *op != span.op {
                continue;
            }
            if h.ts_ns > window_end {
                continue;
            }
            if h.helper != span.recorder && !helpers.contains(&h.helper) {
                helpers.push(h.helper);
            }
            if h.helper != span.recorder {
                report
                    .helper_latency
                    .record(h.ts_ns.saturating_sub(span.start_ns));
            }
            chain_hops.push(h.clone());
        }
        report.residency.record(span.duration_ns());
        report.chains.push(HelpChain {
            span: span.clone(),
            hops: chain_hops,
            helpers,
            depth: 0, // filled below, needs the full span set
        });
    }

    // Pass 3: chain depth. A hop from thread B extends the chain by one;
    // if B was inside its *own* slow-path episode at that instant, the
    // chain continues through B's episode (B was blocked on its own
    // request while moving ours — the transitive helping the Kogan–
    // Petrank scheme is built on). Memoized per episode, cycle-guarded.
    let depths: Vec<usize> = (0..spans.len())
        .map(|i| {
            let mut visiting = Vec::new();
            depth_of(i, &spans, &report.chains, &mut visiting)
        })
        .collect();
    for (chain, d) in report.chains.iter_mut().zip(&depths) {
        chain.depth = *d;
    }
    report.max_chain_depth = depths.iter().copied().max().unwrap_or(0);
    report
}

fn depth_of(
    idx: usize,
    spans: &[SlowSpan],
    chains: &[HelpChain],
    visiting: &mut Vec<usize>,
) -> usize {
    if visiting.contains(&idx) {
        return 1; // cycle guard: count the node, stop the walk
    }
    visiting.push(idx);
    let me = &spans[idx];
    let mut best_tail = 0usize;
    for h in &chains[idx].hops {
        if h.helper == me.recorder {
            continue;
        }
        // Was the helper inside one of its own episodes when it helped?
        let tail = spans
            .iter()
            .enumerate()
            .find(|(_, s)| {
                s.recorder == h.helper && s.start_ns <= h.ts_ns && h.ts_ns <= s.end_ns
            })
            .map(|(j, _)| depth_of(j, spans, chains, visiting))
            .unwrap_or(1);
        best_tail = best_tail.max(tail);
    }
    visiting.pop();
    1 + best_tail
}

impl SpanReport {
    /// Episodes where more than one thread participated.
    pub fn multi_hop_chains(&self) -> usize {
        self.chains.iter().filter(|c| c.is_multi_hop()).count()
    }

    /// Human-readable summary: counts, residency percentiles, helper
    /// latency, and the deepest chain.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "episodes {} (multi-hop {}, unmatched enter/exit {}/{})",
            self.chains.len(),
            self.multi_hop_chains(),
            self.unmatched_enters,
            self.unmatched_exits,
        );
        let _ = writeln!(out, "help-ring residency: {}", self.residency.summary());
        let _ = writeln!(out, "helper latency:      {}", self.helper_latency.summary());
        let _ = write!(out, "max chain depth:     {}", self.max_chain_depth);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfq_obs::Event;

    fn ev(ts_ns: u64, kind: EventKind, arg: u64, op: u64) -> Event {
        Event { ts_ns, kind, arg, op }
    }

    fn trace(id: u64, events: Vec<Event>) -> HandleTrace {
        HandleTrace {
            id,
            thread: format!("t{id}"),
            events,
            dropped: 0,
        }
    }

    #[test]
    fn an_unhelped_episode_is_a_depth_one_chain() {
        let report = reconstruct(&[trace(
            0,
            vec![
                ev(100, EventKind::EnqSlowEnter, 7, 7),
                ev(900, EventKind::EnqSlowExit, 12, 7),
            ],
        )]);
        assert_eq!(report.chains.len(), 1);
        let c = &report.chains[0];
        assert_eq!((c.span.side, c.span.op), (Side::Enq, 7));
        assert_eq!(c.span.duration_ns(), 800);
        assert!(!c.is_multi_hop());
        assert_eq!(c.depth, 1);
        assert_eq!(report.max_chain_depth, 1);
        assert_eq!(report.residency.count(), 1);
        assert_eq!(report.helper_latency.count(), 0);
        assert_eq!(report.unmatched_enters + report.unmatched_exits, 0);
    }

    #[test]
    fn a_cross_thread_commit_makes_a_multi_hop_chain() {
        // Thread 0 publishes enq request 7; thread 1's help_enq commits it.
        let report = reconstruct(&[
            trace(
                0,
                vec![
                    ev(100, EventKind::EnqSlowEnter, 7, 7),
                    ev(900, EventKind::EnqSlowExit, 12, 7),
                ],
            ),
            trace(1, vec![ev(400, EventKind::HelpEnqCommit, 12, 7)]),
        ]);
        assert_eq!(report.chains.len(), 1);
        let c = &report.chains[0];
        assert!(c.is_multi_hop());
        assert_eq!(c.helpers, vec![1]);
        assert_eq!(c.depth, 2);
        assert_eq!(report.multi_hop_chains(), 1);
        // Helper latency = hop ts − span open.
        assert_eq!(report.helper_latency.count(), 1);
        assert!(report.helper_latency.quantile(0.5) >= 300);
    }

    #[test]
    fn same_op_id_on_opposite_sides_does_not_cross_match() {
        // Enq op 5 and deq op 5 are different requests (separate FAA
        // spaces): the deq-side help event must not join the enq episode.
        let report = reconstruct(&[
            trace(
                0,
                vec![
                    ev(100, EventKind::EnqSlowEnter, 5, 5),
                    ev(900, EventKind::EnqSlowExit, 8, 5),
                ],
            ),
            trace(1, vec![ev(400, EventKind::HelpDeqAnnounce, 6, 5)]),
        ]);
        assert_eq!(report.chains.len(), 1);
        assert!(!report.chains[0].is_multi_hop());
    }

    #[test]
    fn chains_extend_through_a_helper_inside_its_own_episode() {
        // A's enq request is committed by B while B sits in its own deq
        // slow path, which in turn is completed by C: depth 3.
        let report = reconstruct(&[
            trace(
                0,
                vec![
                    ev(100, EventKind::EnqSlowEnter, 7, 7),
                    ev(900, EventKind::EnqSlowExit, 12, 7),
                ],
            ),
            trace(
                1,
                vec![
                    ev(200, EventKind::DeqSlowEnter, 40, 40),
                    ev(300, EventKind::HelpEnqCommit, 12, 7),
                    ev(800, EventKind::DeqSlowExit, 44, 40),
                ],
            ),
            trace(2, vec![ev(500, EventKind::HelpDeqComplete, 44, 40)]),
        ]);
        assert_eq!(report.chains.len(), 2);
        let a = report
            .chains
            .iter()
            .find(|c| c.span.side == Side::Enq)
            .unwrap();
        assert_eq!(a.depth, 3, "A → B (in its own episode) → C");
        assert_eq!(report.max_chain_depth, 3);
    }

    #[test]
    fn self_help_hops_do_not_count_as_helpers() {
        // deq_slow self-helps: the requester's own HelpDeq span events
        // match the episode but are not cross-thread hops.
        let report = reconstruct(&[trace(
            0,
            vec![
                ev(100, EventKind::DeqSlowEnter, 9, 9),
                ev(150, EventKind::HelpDeqEnter, 9, 9),
                ev(300, EventKind::HelpDeqAnnounce, 11, 9),
                ev(400, EventKind::HelpDeqComplete, 11, 9),
                ev(450, EventKind::HelpDeqExit, 11, 9),
                ev(500, EventKind::DeqSlowExit, 11, 9),
            ],
        )]);
        assert_eq!(report.chains.len(), 1);
        let c = &report.chains[0];
        assert!(!c.is_multi_hop());
        assert_eq!(c.depth, 1);
        assert_eq!(c.hops.len(), 4, "own hops still belong to the tree");
        assert_eq!(report.helper_latency.count(), 0);
    }

    #[test]
    fn late_completion_within_slack_still_joins_the_episode() {
        // The helper's record! can land after the requester's exit.
        let report = reconstruct(&[
            trace(
                0,
                vec![
                    ev(100, EventKind::DeqSlowEnter, 9, 9),
                    ev(500, EventKind::DeqSlowExit, 11, 9),
                ],
            ),
            trace(1, vec![ev(600, EventKind::HelpDeqComplete, 11, 9)]),
        ]);
        assert!(report.chains[0].is_multi_hop());
        // …but an event far outside the window does not.
        let report = reconstruct(&[
            trace(
                0,
                vec![
                    ev(100, EventKind::DeqSlowEnter, 9, 9),
                    ev(500, EventKind::DeqSlowExit, 11, 9),
                ],
            ),
            trace(
                1,
                vec![ev(500 + EPISODE_SLACK_NS + 1, EventKind::HelpDeqComplete, 11, 9)],
            ),
        ]);
        assert!(!report.chains[0].is_multi_hop());
    }

    #[test]
    fn wrap_damaged_traces_degrade_to_unmatched_counts() {
        let report = reconstruct(&[trace(
            0,
            vec![
                ev(100, EventKind::EnqSlowExit, 3, 3), // enter lost to wrap
                ev(200, EventKind::DeqSlowEnter, 9, 9), // exit never recorded
            ],
        )]);
        assert_eq!(report.chains.len(), 0);
        assert_eq!(report.unmatched_exits, 1);
        assert_eq!(report.unmatched_enters, 1);
    }

    #[test]
    fn render_mentions_the_headline_numbers() {
        let report = reconstruct(&[
            trace(
                0,
                vec![
                    ev(100, EventKind::EnqSlowEnter, 7, 7),
                    ev(900, EventKind::EnqSlowExit, 12, 7),
                ],
            ),
            trace(1, vec![ev(400, EventKind::HelpEnqCommit, 12, 7)]),
        ]);
        let out = report.render();
        assert!(out.contains("episodes 1 (multi-hop 1"), "{out}");
        assert!(out.contains("max chain depth:     2"), "{out}");
    }
}
