//! Log-bucketed latency histogram.
//!
//! The paper's motivation is queues with "fast **and predictable**
//! performance"; wait-freedom is fundamentally a tail-latency guarantee.
//! Figure 2 only shows throughput, so this reproduction adds a latency
//! experiment (`wfq-bench --bin latency`), backed by this histogram:
//! power-of-two-ish buckets (base-2 exponent + 4 sub-buckets) covering
//! 1 ns .. ~1000 s with bounded error ≤ ~12.5% per sample, constant-time
//! recording, and exact counts.

/// Sub-buckets per power of two (precision/memory trade-off).
const SUBS: usize = 4;
/// Number of base-2 exponents covered (2^0 .. 2^39 ns ≈ 550 s).
const EXPS: usize = 40;

/// A fixed-size latency histogram over nanosecond samples.
#[derive(Clone, Debug)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    max: u64,
    min: u64,
    sum: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: vec![0; SUBS * EXPS],
            count: 0,
            max: 0,
            min: u64::MAX,
            sum: 0,
        }
    }

    #[inline]
    fn index_for(ns: u64) -> usize {
        let ns = ns.max(1);
        let exp = 63 - ns.leading_zeros() as usize; // floor(log2)
        let exp = exp.min(EXPS - 1);
        // Sub-bucket from the bits just below the leading one.
        let sub = if exp == 0 {
            0
        } else if exp < 2 {
            ((ns >> (exp - 1)) & 1) as usize * 2
        } else {
            ((ns >> (exp - 2)) & 0b11) as usize
        };
        exp * SUBS + sub.min(SUBS - 1)
    }

    /// Representative (upper-bound) value of a bucket, in nanoseconds.
    fn value_for(index: usize) -> u64 {
        let exp = index / SUBS;
        let sub = index % SUBS;
        let base = 1u64 << exp;
        // Multiply before dividing so sub-bucket widths don't collapse to
        // zero for the smallest exponents.
        base + ((base as u128 * (sub as u128 + 1)) / SUBS as u128) as u64
    }

    /// Records one sample (nanoseconds).
    #[inline]
    pub fn record(&mut self, ns: u64) {
        self.buckets[Self::index_for(ns)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(ns);
        self.max = self.max.max(ns);
        self.min = self.min.min(ns);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact maximum sample.
    pub fn max(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.max
        }
    }

    /// Exact minimum sample.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Exact sum of all samples, ns (saturating; the Prometheus summary's
    /// `_sum` companion to [`Histogram::count`]).
    pub fn sum(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.sum
        }
    }

    /// Mean of all samples.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate quantile `q` in `[0, 1]` (bucket upper bound; the exact
    /// max is returned for q = 1).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        if q >= 1.0 {
            return self.max;
        }
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Self::value_for(i).min(self.max).max(self.min);
            }
        }
        self.max
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
        self.min = self.min.min(other.min);
    }

    /// One-line summary: `p50/p99/p99.9/max` in human units.
    pub fn summary(&self) -> String {
        format!(
            "p50 {}  p99 {}  p99.9 {}  max {}",
            fmt_ns(self.quantile(0.50)),
            fmt_ns(self.quantile(0.99)),
            fmt_ns(self.quantile(0.999)),
            fmt_ns(self.max())
        )
    }
}

/// Formats nanoseconds with an adaptive unit.
pub fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else {
        format!("{:.2}s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn single_sample_dominates_every_quantile() {
        let mut h = Histogram::new();
        h.record(1234);
        assert_eq!(h.count(), 1);
        assert_eq!(h.max(), 1234);
        assert_eq!(h.min(), 1234);
        assert_eq!(h.quantile(0.5), 1234);
        assert_eq!(h.quantile(1.0), 1234);
    }

    #[test]
    fn quantiles_have_bounded_relative_error() {
        let mut h = Histogram::new();
        for ns in (1..100_000u64).step_by(7) {
            h.record(ns);
        }
        for &q in &[0.1, 0.5, 0.9, 0.99] {
            let est = h.quantile(q) as f64;
            let exact = q * 100_000.0;
            let err = (est - exact).abs() / exact;
            assert!(err < 0.30, "q={q}: est {est}, exact ~{exact}, err {err}");
        }
    }

    #[test]
    fn quantiles_are_monotone() {
        let mut h = Histogram::new();
        let mut rng = wfq_sync::XorShift64::new(77);
        for _ in 0..10_000 {
            h.record(rng.next_in(10, 1_000_000));
        }
        let mut prev = 0;
        for i in 0..=100 {
            let q = h.quantile(i as f64 / 100.0);
            assert!(q >= prev, "quantiles must be monotone");
            prev = q;
        }
    }

    #[test]
    fn merge_equals_union() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut whole = Histogram::new();
        for i in 1..1000u64 {
            if i % 2 == 0 {
                a.record(i * 3);
            } else {
                b.record(i * 3);
            }
            whole.record(i * 3);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.max(), whole.max());
        assert_eq!(a.min(), whole.min());
        for &q in &[0.25, 0.5, 0.75, 0.99] {
            assert_eq!(a.quantile(q), whole.quantile(q));
        }
    }

    #[test]
    fn huge_samples_saturate_gracefully() {
        let mut h = Histogram::new();
        h.record(u64::MAX / 2);
        assert_eq!(h.max(), u64::MAX / 2);
        assert!(h.quantile(0.5) > 0);
    }

    #[test]
    fn merge_of_disjoint_ranges_keeps_both_tails() {
        // a: 1µs-range samples, b: 1s-range samples, no bucket overlap.
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for i in 0..100u64 {
            a.record(1_000 + i);
            b.record(1_000_000_000 + i * 1_000);
        }
        a.merge(&b);
        assert_eq!(a.count(), 200);
        assert_eq!(a.min(), 1_000);
        assert_eq!(a.max(), 1_000_000_000 + 99_000);
        // Below the gap the quantiles come from a's range, above from b's.
        assert!(a.quantile(0.25) < 10_000, "p25 {}", a.quantile(0.25));
        assert!(a.quantile(0.75) >= 500_000_000, "p75 {}", a.quantile(0.75));
        // The merged mean sits between the two clusters.
        assert!(a.mean() > 1_000.0 && a.mean() < 1_000_099_000.0);
    }

    #[test]
    fn every_percentile_of_one_sample_is_that_sample() {
        let mut h = Histogram::new();
        h.record(777);
        for i in 0..=100 {
            assert_eq!(
                h.quantile(i as f64 / 100.0),
                777,
                "q={} of a one-sample histogram",
                i as f64 / 100.0
            );
        }
    }

    #[test]
    fn top_bucket_saturation_clamps_not_wraps() {
        // Everything at or beyond 2^39 ns lands in the top bucket; counts
        // stay exact, quantiles stay ordered, and nothing overflows even at
        // u64::MAX (whose bucket value computation would wrap if value_for
        // multiplied in u64).
        let mut h = Histogram::new();
        let huge = [1u64 << 39, (1 << 45) + 3, u64::MAX / 3, u64::MAX];
        for &ns in &huge {
            h.record(ns);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.min(), 1 << 39);
        assert_eq!(h.quantile(1.0), u64::MAX);
        // All four samples share the saturated top bucket, so any interior
        // quantile reports a value clamped into [min, max].
        for &q in &[0.1, 0.5, 0.9] {
            let v = h.quantile(q);
            assert!(v >= h.min() && v <= h.max(), "q={q} escaped range: {v}");
        }
        // Mixing in a small sample keeps the ordering intact.
        h.record(10);
        assert!(h.quantile(0.01) <= h.quantile(0.99));
        assert_eq!(h.min(), 10);
    }

    #[test]
    fn sum_is_exact_and_merge_preserves_it() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        assert_eq!(a.sum(), 0);
        a.record(100);
        a.record(250);
        b.record(50);
        assert_eq!(a.sum(), 350);
        a.merge(&b);
        assert_eq!(a.sum(), 400);
        assert_eq!(a.mean(), 400.0 / 3.0);
    }

    #[test]
    fn merge_preserves_quantile_monotonicity() {
        // Satellite check: after merging two skewed histograms, quantiles
        // must still be nondecreasing in q.
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut rng = wfq_sync::XorShift64::new(9);
        for _ in 0..5_000 {
            a.record(rng.next_in(1, 1_000)); // low cluster
            b.record(rng.next_in(1_000_000, 50_000_000)); // high cluster
        }
        a.merge(&b);
        assert_eq!(a.count(), 10_000);
        let mut prev = 0;
        for i in 0..=1000 {
            let q = a.quantile(i as f64 / 1000.0);
            assert!(q >= prev, "q={} dropped: {q} < {prev}", i as f64 / 1000.0);
            prev = q;
        }
    }

    #[test]
    fn formatting_units() {
        assert_eq!(fmt_ns(15), "15ns");
        assert_eq!(fmt_ns(1_500), "1.5µs");
        assert_eq!(fmt_ns(2_500_000), "2.5ms");
        assert_eq!(fmt_ns(3_210_000_000), "3.21s");
    }

    #[test]
    fn index_value_roundtrip_is_close() {
        for ns in [1u64, 2, 3, 7, 100, 1023, 1025, 65_000, 1 << 30] {
            let idx = Histogram::index_for(ns);
            let rep = Histogram::value_for(idx);
            assert!(
                rep >= ns || (rep as f64 / ns as f64) > 0.7,
                "bucket rep {rep} too far from {ns}"
            );
            assert!(
                (rep as f64) < ns as f64 * 2.0,
                "bucket rep {rep} overshoots {ns}"
            );
        }
    }
}
