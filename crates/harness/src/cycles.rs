//! Cycle-ledger snapshots: schema, exposition, gap attribution, and the
//! `wfq-regress --cycles` comparison engine.
//!
//! The `cycle_ledger` binary measures per-op hardware-counter costs for
//! each backend and, for the WF queue, the per-phase self-time ledger from
//! `wfq_obs::ledger`. This module owns everything downstream of the
//! measurement: the normalized `results/BENCH_cycles.json` document
//! ([`render_cycles_json`] / [`parse_cycles_snapshot`]), the WF−F&A gap
//! attribution arithmetic ([`attribute_gap`]), the Prometheus exposition
//! ([`render_cycles_prometheus`]), the trajectory line, and the per-phase
//! regression gate ([`compare_cycles`]).
//!
//! Two drift guards, both by construction rather than by parallel lists:
//! counter-derived fields (`cycles_per_op`, `instructions_per_op`,
//! `l1d_miss_per_op`, …) are stored in an array indexed by
//! `wfq_obs::CounterKind` and every renderer/parser loops
//! `wfq_obs::ALL_COUNTERS`, so a new counter kind extends the JSON schema,
//! the parser, and the exposition in one place; phase names come from
//! `wfq_obs::Phase::name`, and the parity test walks `ALL_PHASES`.

use crate::json::{self, Value};
use wfq_obs::{CounterKind, Phase, ALL_COUNTERS, NUM_COUNTERS};

/// Mean per-op cost of one ledger phase, with a Student-t 95% CI half-width
/// over invocations.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseCost {
    /// Phase name (`Phase::name` — `faa`, `find_cell`, …).
    pub phase: String,
    /// Mean phase self-cycles per operation.
    pub cycles_per_op: f64,
    /// 95% CI half-width of `cycles_per_op` over invocations.
    pub ci_half: f64,
    /// Mean phase entries (enter/exit pairs) per operation.
    pub entries_per_op: f64,
}

/// One `(queue, threads)` cycles measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct CyclesPoint {
    /// Concurrency level (producer+consumer total, as in BENCH_pairwise).
    pub threads: usize,
    /// Per-op counter means, indexed by `CounterKind as usize`
    /// (`counters_per_op[Cycles]` is the headline cycles/op).
    pub counters_per_op: [f64; NUM_COUNTERS],
    /// 95% CI half-width of cycles/op over invocations.
    pub ci_half: f64,
    /// True when cycles are multiplex-scaled or TSC-derived rather than a
    /// direct hardware measurement.
    pub estimated: bool,
    /// Percent of this point's op cycles the phase ledger accounts for
    /// (Σ phase self-cycles / total op cycles × 100; 0 for unledgered
    /// backends).
    pub attributed_pct: f64,
    /// Per-phase ledger costs (empty for backends without `phase!` hooks).
    pub phases: Vec<PhaseCost>,
}

impl CyclesPoint {
    /// Headline cycles per op.
    pub fn cycles_per_op(&self) -> f64 {
        self.counters_per_op[CounterKind::Cycles as usize]
    }

    /// One counter's per-op mean.
    pub fn counter_per_op(&self, kind: CounterKind) -> f64 {
        self.counters_per_op[kind as usize]
    }

    /// Sum of per-phase self-cycles (the ledger's accounted total).
    pub fn phase_sum(&self) -> f64 {
        self.phases.iter().map(|p| p.cycles_per_op).sum()
    }
}

/// One backend's cycles series.
#[derive(Debug, Clone, PartialEq)]
pub struct CyclesSeries {
    /// Backend display name (`FAA`, `Mutex<VecDeque>`, `WF-10`, …).
    pub name: String,
    /// One point per measured thread count.
    pub points: Vec<CyclesPoint>,
}

/// How the perf layer sourced its numbers for this snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfMode {
    /// `"hardware"` or `"tsc-only"` (`PerfStatus::mode`).
    pub mode: String,
    /// Whether reads went through user-space `rdpmc`.
    pub rdpmc: bool,
    /// Denial cause in tsc-only mode (empty in hardware mode).
    pub reason: String,
}

/// One phase's contribution to the WF−F&A cycle gap.
#[derive(Debug, Clone, PartialEq)]
pub struct GapPhase {
    /// Phase name.
    pub phase: String,
    /// The phase's per-op self-cycles in the candidate.
    pub cycles_per_op: f64,
    /// The phase's contribution to the gap, per op. For the `faa` phase
    /// this is the *excess* over the baseline's whole op (the baseline IS
    /// a fetch-and-add); for every other phase it is the phase cost itself.
    pub gap_contribution: f64,
    /// `gap_contribution` as a percentage of the total gap.
    pub share_pct: f64,
}

/// The differential table attributing the candidate−baseline cycle delta
/// phase by phase (the tentpole's headline artifact).
#[derive(Debug, Clone, PartialEq)]
pub struct GapAttribution {
    /// Baseline backend name (`FAA`).
    pub baseline: String,
    /// Candidate backend name (`WF-10`).
    pub candidate: String,
    /// Candidate cycles/op − baseline cycles/op.
    pub cycle_delta_per_op: f64,
    /// Percent of the delta the per-phase ledger accounts for (the
    /// acceptance criterion wants ≥ 80 at 1 thread).
    pub attributed_pct: f64,
    /// Per-phase breakdown, in `ALL_PHASES` order.
    pub phases: Vec<GapPhase>,
}

/// A parsed cycles snapshot (`results/BENCH_cycles.json`).
#[derive(Debug, Clone, PartialEq)]
pub struct CyclesSnapshot {
    /// Commit the snapshot measured.
    pub commit: Option<String>,
    /// Benchmark name (`cycle_ledger`).
    pub benchmark: String,
    /// Workload label (`pairwise`).
    pub workload: String,
    /// Counter sourcing for the whole run.
    pub perf: PerfMode,
    /// One series per backend.
    pub series: Vec<CyclesSeries>,
    /// The single-thread gap attribution (absent when the run did not
    /// include both the baseline and the candidate).
    pub delta: Option<GapAttribution>,
}

impl CyclesSnapshot {
    /// Finds a `(queue, threads)` point.
    pub fn point(&self, queue: &str, threads: usize) -> Option<&CyclesPoint> {
        self.series
            .iter()
            .find(|s| s.name == queue)?
            .points
            .iter()
            .find(|p| p.threads == threads)
    }
}

// ----------------------------------------------------------------------
// Gap attribution (pure arithmetic, unit-testable)
// ----------------------------------------------------------------------

/// Attributes the candidate−baseline cycle delta phase by phase.
///
/// The baseline (bare F&A) *is* the candidate's `faa` phase, so the `faa`
/// row contributes only its excess over the baseline's whole op; every
/// other phase is pure overhead relative to the baseline and contributes
/// its full self-cost. `attributed_pct` is the summed contributions over
/// the gap — the ≥80% acceptance bar — and degrades to 0 (never NaN/∞)
/// when the gap is non-positive.
pub fn attribute_gap(
    baseline_name: &str,
    base: &CyclesPoint,
    candidate_name: &str,
    cand: &CyclesPoint,
) -> GapAttribution {
    let gap = cand.cycles_per_op() - base.cycles_per_op();
    let mut phases = Vec::new();
    let mut explained = 0.0;
    for p in &cand.phases {
        let contribution = if p.phase == Phase::Faa.name() {
            (p.cycles_per_op - base.cycles_per_op()).max(0.0)
        } else {
            p.cycles_per_op
        };
        explained += contribution;
        phases.push(GapPhase {
            phase: p.phase.clone(),
            cycles_per_op: p.cycles_per_op,
            gap_contribution: contribution,
            share_pct: if gap > 0.0 {
                100.0 * contribution / gap
            } else {
                0.0
            },
        });
    }
    GapAttribution {
        baseline: baseline_name.to_string(),
        candidate: candidate_name.to_string(),
        cycle_delta_per_op: gap,
        attributed_pct: if gap > 0.0 {
            100.0 * explained / gap
        } else {
            0.0
        },
        phases,
    }
}

// ----------------------------------------------------------------------
// JSON render / parse
// ----------------------------------------------------------------------

fn esc(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn render_point(out: &mut String, p: &CyclesPoint, indent: &str) {
    out.push_str(&format!("{indent}{{\n{indent}  \"threads\": {},\n", p.threads));
    // Counter fields derive their names from the canonical enumeration:
    // `<kind>_per_op`. A new CounterKind lands here automatically.
    for kind in ALL_COUNTERS {
        out.push_str(&format!(
            "{indent}  \"{}_per_op\": {:.6},\n",
            kind.name(),
            p.counter_per_op(kind)
        ));
    }
    out.push_str(&format!("{indent}  \"ci_half\": {:.6},\n", p.ci_half));
    out.push_str(&format!("{indent}  \"estimated\": {},\n", p.estimated));
    out.push_str(&format!(
        "{indent}  \"attributed_pct\": {:.3},\n",
        p.attributed_pct
    ));
    out.push_str(&format!("{indent}  \"phases\": ["));
    for (i, ph) in p.phases.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n{indent}    {{\"phase\": \"{}\", \"cycles_per_op\": {:.6}, \"ci_half\": {:.6}, \"entries_per_op\": {:.6}}}",
            esc(&ph.phase), ph.cycles_per_op, ph.ci_half, ph.entries_per_op
        ));
    }
    if !p.phases.is_empty() {
        out.push_str(&format!("\n{indent}  "));
    }
    out.push_str(&format!("]\n{indent}}}"));
}

/// Renders a cycles snapshot as the normalized `BENCH_cycles.json`
/// document.
pub fn render_cycles_json(snap: &CyclesSnapshot) -> String {
    let mut out = String::from("{\n");
    if let Some(c) = &snap.commit {
        out.push_str(&format!("  \"commit\": \"{}\",\n", esc(c)));
    }
    out.push_str(&format!(
        "  \"benchmark\": \"{}\",\n  \"workload\": \"{}\",\n",
        esc(&snap.benchmark),
        esc(&snap.workload)
    ));
    out.push_str(&format!(
        "  \"perf\": {{\"mode\": \"{}\", \"rdpmc\": {}, \"reason\": \"{}\"}},\n",
        esc(&snap.perf.mode),
        snap.perf.rdpmc,
        esc(&snap.perf.reason)
    ));
    out.push_str("  \"series\": [\n");
    for (si, s) in snap.series.iter().enumerate() {
        out.push_str(&format!(
            "    {{\n      \"queue\": \"{}\",\n      \"points\": [\n",
            esc(&s.name)
        ));
        for (pi, p) in s.points.iter().enumerate() {
            render_point(&mut out, p, "        ");
            if pi + 1 < s.points.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("      ]\n    }");
        if si + 1 < snap.series.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ]");
    if let Some(d) = &snap.delta {
        out.push_str(&format!(
            ",\n  \"delta\": {{\n    \"baseline\": \"{}\",\n    \"candidate\": \"{}\",\n    \"cycle_delta_per_op\": {:.6},\n    \"attributed_pct\": {:.3},\n    \"phases\": [",
            esc(&d.baseline), esc(&d.candidate), d.cycle_delta_per_op, d.attributed_pct
        ));
        for (i, p) in d.phases.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n      {{\"phase\": \"{}\", \"cycles_per_op\": {:.6}, \"gap_contribution\": {:.6}, \"share_pct\": {:.3}}}",
                esc(&p.phase), p.cycles_per_op, p.gap_contribution, p.share_pct
            ));
        }
        if !d.phases.is_empty() {
            out.push_str("\n    ");
        }
        out.push_str("]\n  }");
    }
    out.push_str("\n}\n");
    out
}

/// Parses a cycles snapshot. Same strictness discipline as
/// [`crate::regress::parse_snapshot`]: empty `series`/`points` arrays,
/// non-finite numbers, unknown phase names, and a missing `perf` block are
/// parse errors, not vacuous gate passes.
pub fn parse_cycles_snapshot(doc: &str) -> Result<CyclesSnapshot, String> {
    let v = json::parse(doc)?;
    let str_field = |v: &Value, k: &str| -> Result<String, String> {
        v.get(k)
            .and_then(|x| x.as_str().map(str::to_string))
            .ok_or_else(|| format!("cycles snapshot missing string field {k:?}"))
    };
    let num_field = |v: &Value, k: &str| -> Result<f64, String> {
        let n = v
            .get(k)
            .and_then(|x| x.as_num())
            .ok_or_else(|| format!("cycles point missing number field {k:?}"))?;
        if !n.is_finite() {
            return Err(format!("cycles point field {k:?} is not a finite number"));
        }
        Ok(n)
    };
    let bool_field = |v: &Value, k: &str| -> Result<bool, String> {
        match v.get(k) {
            Some(Value::Bool(b)) => Ok(*b),
            _ => Err(format!("cycles point missing bool field {k:?}")),
        }
    };

    let perf_v = v.get("perf").ok_or("cycles snapshot missing perf block")?;
    let perf = PerfMode {
        mode: str_field(&perf_v, "mode")?,
        rdpmc: bool_field(&perf_v, "rdpmc")?,
        reason: str_field(&perf_v, "reason")?,
    };

    let mut series = Vec::new();
    for s in v
        .get("series")
        .and_then(|x| x.as_arr())
        .ok_or("cycles snapshot missing series array")?
    {
        let name = str_field(&s, "queue")?;
        let mut points = Vec::new();
        for p in s
            .get("points")
            .and_then(|x| x.as_arr())
            .ok_or("cycles series missing points array")?
        {
            let mut counters_per_op = [0.0; NUM_COUNTERS];
            for kind in ALL_COUNTERS {
                counters_per_op[kind as usize] =
                    num_field(&p, &format!("{}_per_op", kind.name()))?;
            }
            let mut phases = Vec::new();
            for ph in p
                .get("phases")
                .and_then(|x| x.as_arr())
                .ok_or("cycles point missing phases array")?
            {
                let phase = str_field(&ph, "phase")?;
                if Phase::from_name(&phase).is_none() {
                    return Err(format!("cycles point has unknown phase {phase:?}"));
                }
                phases.push(PhaseCost {
                    phase,
                    cycles_per_op: num_field(&ph, "cycles_per_op")?,
                    ci_half: num_field(&ph, "ci_half")?,
                    entries_per_op: num_field(&ph, "entries_per_op")?,
                });
            }
            points.push(CyclesPoint {
                threads: num_field(&p, "threads")? as usize,
                counters_per_op,
                ci_half: num_field(&p, "ci_half")?,
                estimated: bool_field(&p, "estimated")?,
                attributed_pct: num_field(&p, "attributed_pct")?,
                phases,
            });
        }
        if points.is_empty() {
            return Err(format!(
                "cycles series {name:?} has no points — refusing a snapshot the gate cannot compare"
            ));
        }
        series.push(CyclesSeries { name, points });
    }
    if series.is_empty() {
        return Err(
            "cycles snapshot has no series — refusing a snapshot the gate cannot compare".into(),
        );
    }

    let delta = match v.get("delta") {
        None => None,
        Some(d) => {
            let mut phases = Vec::new();
            if let Some(arr) = d.get("phases").and_then(|x| x.as_arr()) {
                for p in arr {
                    phases.push(GapPhase {
                        phase: str_field(&p, "phase")?,
                        cycles_per_op: num_field(&p, "cycles_per_op")?,
                        gap_contribution: num_field(&p, "gap_contribution")?,
                        share_pct: num_field(&p, "share_pct")?,
                    });
                }
            }
            Some(GapAttribution {
                baseline: str_field(&d, "baseline")?,
                candidate: str_field(&d, "candidate")?,
                cycle_delta_per_op: num_field(&d, "cycle_delta_per_op")?,
                attributed_pct: num_field(&d, "attributed_pct")?,
                phases,
            })
        }
    };

    Ok(CyclesSnapshot {
        commit: v.get("commit").and_then(|x| x.as_str().map(str::to_string)),
        benchmark: str_field(&v, "benchmark")?,
        workload: str_field(&v, "workload")?,
        perf,
        series,
        delta,
    })
}

// ----------------------------------------------------------------------
// Prometheus exposition
// ----------------------------------------------------------------------

/// Renders a cycles snapshot in the Prometheus text format: per-backend
/// `wfq_cycles_per_op` gauges labeled by `phase` (`total` plus each
/// ledgered phase), the companion per-op counter gauges (instructions,
/// branch misses), `wfq_cache_miss_per_op` labeled by cache `level`, the
/// estimated/measured flag, and the ledger's attribution coverage.
pub fn render_cycles_prometheus(snap: &CyclesSnapshot) -> String {
    let mut out = String::new();
    out.push_str("# HELP wfq_cycles_per_op Mean cycles per operation, by protocol phase (total = whole op)\n# TYPE wfq_cycles_per_op gauge\n");
    for s in &snap.series {
        for p in &s.points {
            out.push_str(&format!(
                "wfq_cycles_per_op{{queue=\"{}\",threads=\"{}\",phase=\"total\"}} {:.3}\n",
                s.name,
                p.threads,
                p.cycles_per_op()
            ));
            for ph in &p.phases {
                out.push_str(&format!(
                    "wfq_cycles_per_op{{queue=\"{}\",threads=\"{}\",phase=\"{}\"}} {:.3}\n",
                    s.name, p.threads, ph.phase, ph.cycles_per_op
                ));
            }
        }
    }
    out.push_str("# HELP wfq_cycles_estimated Whether cycle counts are estimates (multiplex-scaled or TSC-derived) rather than direct measurements\n# TYPE wfq_cycles_estimated gauge\n");
    for s in &snap.series {
        for p in &s.points {
            out.push_str(&format!(
                "wfq_cycles_estimated{{queue=\"{}\",threads=\"{}\"}} {}\n",
                s.name,
                p.threads,
                if p.estimated { 1 } else { 0 }
            ));
        }
    }
    out.push_str("# HELP wfq_cycles_attributed_pct Percent of op cycles the phase ledger accounts for\n# TYPE wfq_cycles_attributed_pct gauge\n");
    for s in &snap.series {
        for p in &s.points {
            if !p.phases.is_empty() {
                out.push_str(&format!(
                    "wfq_cycles_attributed_pct{{queue=\"{}\",threads=\"{}\"}} {:.1}\n",
                    s.name, p.threads, p.attributed_pct
                ));
            }
        }
    }
    // Non-cycle counters: the cache-miss kinds share one level-labeled
    // metric; the rest get their own gauge. The match is exhaustive over
    // CounterKind so a new counter cannot silently skip the exposition.
    for kind in ALL_COUNTERS {
        let (metric, label): (&str, Option<&str>) = match kind {
            CounterKind::Cycles => continue, // rendered above, phase-labeled
            CounterKind::Instructions => ("wfq_instructions_per_op", None),
            CounterKind::L1dMisses => ("wfq_cache_miss_per_op", Some("l1d")),
            CounterKind::LlcMisses => ("wfq_cache_miss_per_op", Some("llc")),
            CounterKind::BranchMisses => ("wfq_branch_miss_per_op", None),
        };
        if label.is_none() || label == Some("l1d") {
            // Emit each metric's header once (the two cache levels share).
            let help = match metric {
                "wfq_instructions_per_op" => "Mean retired instructions per operation",
                "wfq_cache_miss_per_op" => "Mean cache read misses per operation, by cache level",
                _ => "Mean branch mispredictions per operation",
            };
            out.push_str(&format!(
                "# HELP {metric} {help}\n# TYPE {metric} gauge\n"
            ));
        }
        for s in &snap.series {
            for p in &s.points {
                match label {
                    Some(level) => out.push_str(&format!(
                        "{metric}{{queue=\"{}\",threads=\"{}\",level=\"{level}\"}} {:.4}\n",
                        s.name,
                        p.threads,
                        p.counter_per_op(kind)
                    )),
                    None => out.push_str(&format!(
                        "{metric}{{queue=\"{}\",threads=\"{}\"}} {:.4}\n",
                        s.name,
                        p.threads,
                        p.counter_per_op(kind)
                    )),
                }
            }
        }
    }
    out
}

// ----------------------------------------------------------------------
// Comparison (the --cycles gate)
// ----------------------------------------------------------------------

/// One `(queue, threads, phase)` cycles comparison. Polarity mirrors the
/// latency gate: **higher is worse**. The pseudo-phase `total` carries the
/// whole-op comparison.
#[derive(Debug, Clone)]
pub struct CyclesDelta {
    /// Queue display name.
    pub queue: String,
    /// Concurrency level.
    pub threads: usize,
    /// Phase name, or `total`.
    pub phase: String,
    /// Baseline `(cycles_per_op, ci_half)`.
    pub base: (f64, f64),
    /// Candidate `(cycles_per_op, ci_half)`.
    pub cand: (f64, f64),
    /// Relative change, percent (positive = more cycles = worse).
    pub pct_change: f64,
    /// Whether the 95% CIs do not overlap.
    pub significant: bool,
    /// Fails the gate.
    pub regressed: bool,
    /// Significant improvement past the threshold: reported, never fails.
    pub improved: bool,
}

/// The result of comparing candidate cycles against a baseline.
#[derive(Debug)]
pub struct CyclesComparison {
    /// Every matched `(queue, threads, phase)` point.
    pub deltas: Vec<CyclesDelta>,
    /// Keys present in only one snapshot.
    pub unmatched: Vec<String>,
}

impl CyclesComparison {
    /// The deltas that fail the gate.
    pub fn regressions(&self) -> Vec<&CyclesDelta> {
        self.deltas.iter().filter(|d| d.regressed).collect()
    }

    /// Human-readable comparison table (cycles/op).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<14} {:>7} {:<10} {:>18} {:>18} {:>8}  verdict",
            "queue", "threads", "phase", "baseline", "candidate", "delta"
        );
        for d in &self.deltas {
            let verdict = if d.regressed {
                "REGRESSION"
            } else if d.improved {
                "improved"
            } else if d.significant {
                "within threshold"
            } else {
                "ok"
            };
            let _ = writeln!(
                out,
                "{:<14} {:>7} {:<10} {:>10.1} ±{:<6.1} {:>10.1} ±{:<6.1} {:>+7.1}%  {}",
                d.queue,
                d.threads,
                d.phase,
                d.base.0,
                d.base.1,
                d.cand.0,
                d.cand.1,
                d.pct_change,
                verdict
            );
        }
        for u in &self.unmatched {
            let _ = writeln!(out, "unmatched: {u}");
        }
        out
    }
}

/// Compares candidate cycles against baseline on `(queue, threads, phase)`
/// keys — the whole-op `total` plus every ledgered phase. A point
/// **regresses** when the candidate burns *more* cycles, the relative
/// increase exceeds `threshold_pct` (the gate's default is 10 — per-phase
/// cycle counts are noisier than throughput means), and the 95% CIs do not
/// overlap: the same three-part test (Georges et al.) as every other gate
/// in the harness, with the latency gate's polarity.
pub fn compare_cycles(
    base: &CyclesSnapshot,
    cand: &CyclesSnapshot,
    threshold_pct: f64,
) -> CyclesComparison {
    let mut deltas = Vec::new();
    let mut unmatched = Vec::new();
    let push = |queue: &str,
                    threads: usize,
                    phase: &str,
                    b: (f64, f64),
                    c: (f64, f64),
                    deltas: &mut Vec<CyclesDelta>| {
        let diff = c.0 - b.0;
        let pct_change = if b.0 == 0.0 { 0.0 } else { 100.0 * diff / b.0 };
        let significant = diff.abs() > b.1 + c.1;
        deltas.push(CyclesDelta {
            queue: queue.to_string(),
            threads,
            phase: phase.to_string(),
            base: b,
            cand: c,
            pct_change,
            significant,
            regressed: significant && pct_change > threshold_pct,
            improved: significant && pct_change < -threshold_pct,
        });
    };
    for bs in &base.series {
        let Some(cs) = cand.series.iter().find(|s| s.name == bs.name) else {
            unmatched.push(format!("{} (baseline only)", bs.name));
            continue;
        };
        for bp in &bs.points {
            let Some(cp) = cs.points.iter().find(|p| p.threads == bp.threads) else {
                unmatched.push(format!("{} @{} (baseline only)", bs.name, bp.threads));
                continue;
            };
            push(
                &bs.name,
                bp.threads,
                "total",
                (bp.cycles_per_op(), bp.ci_half),
                (cp.cycles_per_op(), cp.ci_half),
                &mut deltas,
            );
            for bph in &bp.phases {
                let Some(cph) = cp.phases.iter().find(|p| p.phase == bph.phase) else {
                    unmatched.push(format!(
                        "{} @{} phase {} (baseline only)",
                        bs.name, bp.threads, bph.phase
                    ));
                    continue;
                };
                push(
                    &bs.name,
                    bp.threads,
                    &bph.phase,
                    (bph.cycles_per_op, bph.ci_half),
                    (cph.cycles_per_op, cph.ci_half),
                    &mut deltas,
                );
            }
            for cph in &cp.phases {
                if !bp.phases.iter().any(|p| p.phase == cph.phase) {
                    unmatched.push(format!(
                        "{} @{} phase {} (candidate only)",
                        bs.name, bp.threads, cph.phase
                    ));
                }
            }
        }
    }
    for cs in &cand.series {
        if !base.series.iter().any(|s| s.name == cs.name) {
            unmatched.push(format!("{} (candidate only)", cs.name));
        }
    }
    CyclesComparison { deltas, unmatched }
}

/// Renders one cycles snapshot as a single normalized JSON line for
/// `results/trajectory.jsonl` (same compaction discipline as
/// [`crate::regress::trajectory_line`]).
pub fn cycles_trajectory_line(snap: &CyclesSnapshot) -> String {
    let mut out = String::from("{");
    if let Some(c) = &snap.commit {
        out.push_str(&format!("\"commit\": \"{}\", ", esc(c)));
    }
    out.push_str(&format!(
        "\"benchmark\": \"{}\", \"workload\": \"{}\", \"perf\": \"{}\", \"series\": [",
        esc(&snap.benchmark),
        esc(&snap.workload),
        esc(&snap.perf.mode)
    ));
    for (si, s) in snap.series.iter().enumerate() {
        if si > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("{{\"queue\": \"{}\", \"points\": [", esc(&s.name)));
        for (pi, p) in s.points.iter().enumerate() {
            if pi > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"threads\": {}, \"cycles_per_op\": {:.3}, \"ci_half\": {:.3}, \"attributed_pct\": {:.1}",
                p.threads,
                p.cycles_per_op(),
                p.ci_half,
                p.attributed_pct
            ));
            if !p.phases.is_empty() {
                out.push_str(", \"phases\": {");
                for (qi, ph) in p.phases.iter().enumerate() {
                    if qi > 0 {
                        out.push_str(", ");
                    }
                    out.push_str(&format!("\"{}\": {:.3}", esc(&ph.phase), ph.cycles_per_op));
                }
                out.push('}');
            }
            out.push('}');
        }
        out.push_str("]}");
    }
    out.push_str("]");
    if let Some(d) = &snap.delta {
        out.push_str(&format!(
            ", \"delta\": {{\"baseline\": \"{}\", \"candidate\": \"{}\", \"cycle_delta_per_op\": {:.3}, \"attributed_pct\": {:.1}}}",
            esc(&d.baseline), esc(&d.candidate), d.cycle_delta_per_op, d.attributed_pct
        ));
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfq_obs::ALL_PHASES;

    /// A point with every phase and every counter populated with unique
    /// values — built by walking the canonical enumerations, so adding a
    /// Phase or CounterKind automatically widens every test below.
    fn full_point(threads: usize, scale: f64) -> CyclesPoint {
        let mut counters_per_op = [0.0; NUM_COUNTERS];
        for (i, kind) in ALL_COUNTERS.iter().enumerate() {
            counters_per_op[*kind as usize] = scale * (100.0 + i as f64);
        }
        let phases: Vec<PhaseCost> = ALL_PHASES
            .iter()
            .enumerate()
            .map(|(i, p)| PhaseCost {
                phase: p.name().to_string(),
                cycles_per_op: scale * (10.0 + i as f64),
                ci_half: 0.5,
                entries_per_op: 1.0 + i as f64 * 0.1,
            })
            .collect();
        let total = counters_per_op[CounterKind::Cycles as usize];
        let sum: f64 = phases.iter().map(|p| p.cycles_per_op).sum();
        CyclesPoint {
            threads,
            counters_per_op,
            ci_half: 1.0,
            estimated: true,
            attributed_pct: 100.0 * sum / total,
            phases,
        }
    }

    fn sample_snapshot() -> CyclesSnapshot {
        let faa = CyclesPoint {
            threads: 1,
            counters_per_op: {
                let mut c = [0.0; NUM_COUNTERS];
                c[CounterKind::Cycles as usize] = 30.0;
                c
            },
            ci_half: 0.5,
            estimated: true,
            attributed_pct: 0.0,
            phases: Vec::new(),
        };
        let wf = full_point(1, 1.0);
        CyclesSnapshot {
            commit: Some("abc1234".into()),
            benchmark: "cycle_ledger".into(),
            workload: "pairwise".into(),
            perf: PerfMode {
                mode: "tsc-only".into(),
                rdpmc: false,
                reason: "WFQ_PERF_DENY".into(),
            },
            series: vec![
                CyclesSeries {
                    name: "FAA".into(),
                    points: vec![faa.clone()],
                },
                CyclesSeries {
                    name: "WF-10".into(),
                    points: vec![wf.clone()],
                },
            ],
            delta: Some(attribute_gap("FAA", &faa, "WF-10", &wf)),
        }
    }

    #[test]
    fn json_round_trips_exactly() {
        let snap = sample_snapshot();
        let doc = render_cycles_json(&snap);
        let parsed = parse_cycles_snapshot(&doc).expect("rendered snapshot must parse");
        assert_eq!(parsed.benchmark, snap.benchmark);
        assert_eq!(parsed.perf, snap.perf);
        assert_eq!(parsed.series.len(), snap.series.len());
        let (a, b) = (&parsed.series[1].points[0], &snap.series[1].points[0]);
        assert_eq!(a.threads, b.threads);
        assert_eq!(a.phases.len(), b.phases.len());
        for (x, y) in a.counters_per_op.iter().zip(b.counters_per_op.iter()) {
            assert!((x - y).abs() < 1e-6);
        }
        let d = parsed.delta.expect("delta survives the round trip");
        assert_eq!(d.baseline, "FAA");
        assert_eq!(d.phases.len(), ALL_PHASES.len());
    }

    #[test]
    fn parser_rejects_snapshots_the_gate_cannot_compare() {
        let snap = sample_snapshot();
        let good = render_cycles_json(&snap);

        let no_series = good.replacen("\"queue\": \"FAA\"", "\"queue\": \"FAA\"", 1);
        assert!(parse_cycles_snapshot(&no_series).is_ok(), "control");

        assert!(
            parse_cycles_snapshot("{\"benchmark\": \"x\", \"workload\": \"y\", \"perf\": {\"mode\": \"tsc-only\", \"rdpmc\": false, \"reason\": \"\"}, \"series\": []}")
                .unwrap_err()
                .contains("no series")
        );
        assert!(
            parse_cycles_snapshot("{\"benchmark\": \"x\", \"workload\": \"y\", \"perf\": {\"mode\": \"tsc-only\", \"rdpmc\": false, \"reason\": \"\"}, \"series\": [{\"queue\": \"FAA\", \"points\": []}]}")
                .unwrap_err()
                .contains("no points")
        );
        // A missing perf block means the snapshot cannot say whether its
        // numbers were measured or estimated — reject.
        let no_perf = good.replace("\"perf\"", "\"perf_gone\"");
        assert!(parse_cycles_snapshot(&no_perf)
            .unwrap_err()
            .contains("perf"));
        // Unknown phase names are schema drift, not data.
        let bad_phase = good.replace("\"phase\": \"faa\"", "\"phase\": \"warp\"");
        assert!(parse_cycles_snapshot(&bad_phase)
            .unwrap_err()
            .contains("unknown phase"));
        // Non-finite numbers are mis-generated snapshots.
        let nan = good.replace("\"ci_half\": 1.000000", "\"ci_half\": 1e999");
        assert!(parse_cycles_snapshot(&nan).is_err());
    }

    #[test]
    fn counter_fields_cover_the_canonical_enumeration() {
        // Drift guard: every CounterKind must surface as `<name>_per_op`
        // in the JSON document, and dropping any one of them must fail the
        // parse.
        let doc = render_cycles_json(&sample_snapshot());
        for kind in ALL_COUNTERS {
            let field = format!("\"{}_per_op\"", kind.name());
            assert!(doc.contains(&field), "JSON missing {field}");
            let broken = doc.replace(&field, "\"bogus_per_op\"");
            assert!(
                parse_cycles_snapshot(&broken).is_err(),
                "parser accepted a snapshot without {field}"
            );
        }
    }

    #[test]
    fn attribution_splits_the_gap_by_phase() {
        // Baseline: 30 cycles/op. Candidate: 100 cycles/op total, ledger
        // says faa=35, find_cell=20, cell_cas=15, stats=10, slow_path=8
        // (sum 88). Gap = 70; contributions: faa excess 5, others full —
        // 5+20+15+10+8 = 58 → 82.86%.
        let base = CyclesPoint {
            threads: 1,
            counters_per_op: {
                let mut c = [0.0; NUM_COUNTERS];
                c[CounterKind::Cycles as usize] = 30.0;
                c
            },
            ci_half: 0.1,
            estimated: true,
            attributed_pct: 0.0,
            phases: Vec::new(),
        };
        let mk = |phase: Phase, cyc: f64| PhaseCost {
            phase: phase.name().to_string(),
            cycles_per_op: cyc,
            ci_half: 0.1,
            entries_per_op: 1.0,
        };
        let cand = CyclesPoint {
            threads: 1,
            counters_per_op: {
                let mut c = [0.0; NUM_COUNTERS];
                c[CounterKind::Cycles as usize] = 100.0;
                c
            },
            ci_half: 0.2,
            estimated: true,
            attributed_pct: 88.0,
            phases: vec![
                mk(Phase::Faa, 35.0),
                mk(Phase::FindCell, 20.0),
                mk(Phase::CellCas, 15.0),
                mk(Phase::Stats, 10.0),
                mk(Phase::SlowPath, 8.0),
            ],
        };
        let gap = attribute_gap("FAA", &base, "WF-10", &cand);
        assert_eq!(gap.cycle_delta_per_op, 70.0);
        assert!((gap.attributed_pct - 100.0 * 58.0 / 70.0).abs() < 1e-9);
        let faa_row = gap.phases.iter().find(|p| p.phase == "faa").unwrap();
        assert_eq!(faa_row.gap_contribution, 5.0, "faa contributes only its excess");
        let fc = gap.phases.iter().find(|p| p.phase == "find_cell").unwrap();
        assert_eq!(fc.gap_contribution, 20.0);
        assert!((fc.share_pct - 100.0 * 20.0 / 70.0).abs() < 1e-9);
    }

    #[test]
    fn attribution_degrades_on_a_non_positive_gap() {
        let p = full_point(1, 1.0);
        let gap = attribute_gap("A", &p, "B", &p.clone());
        assert_eq!(gap.cycle_delta_per_op, 0.0);
        assert_eq!(gap.attributed_pct, 0.0, "no NaN/∞ on a zero gap");
        for ph in &gap.phases {
            assert_eq!(ph.share_pct, 0.0);
        }
    }

    #[test]
    fn exposition_carries_every_phase_and_counter() {
        // The drift-guarded parity test (satellite): walk the canonical
        // enumerations and require each phase label and each counter
        // metric in the exposition of a fully-populated snapshot.
        let snap = sample_snapshot();
        let out = render_cycles_prometheus(&snap);
        assert!(out.contains("phase=\"total\""));
        for p in ALL_PHASES {
            assert!(
                out.contains(&format!("phase=\"{}\"", p.name())),
                "exposition missing phase {}:\n{out}",
                p.name()
            );
        }
        for kind in ALL_COUNTERS {
            let needle = match kind {
                CounterKind::Cycles => "wfq_cycles_per_op{".to_string(),
                CounterKind::Instructions => "wfq_instructions_per_op{".to_string(),
                CounterKind::L1dMisses => "level=\"l1d\"".to_string(),
                CounterKind::LlcMisses => "level=\"llc\"".to_string(),
                CounterKind::BranchMisses => "wfq_branch_miss_per_op{".to_string(),
            };
            assert!(
                out.contains(&needle),
                "exposition missing counter {} ({needle}):\n{out}",
                kind.name()
            );
        }
        assert!(out.contains("wfq_cycles_estimated{queue=\"WF-10\",threads=\"1\"} 1"));
        assert!(out.contains("wfq_cycles_attributed_pct{queue=\"WF-10\""));
        assert!(
            !out.contains("wfq_cycles_attributed_pct{queue=\"FAA\""),
            "unledgered backends must not claim attribution coverage"
        );
        // Format sanity: every sample line is `name{labels} value`.
        for line in out.lines().filter(|l| !l.starts_with('#')) {
            assert_eq!(line.split(' ').count(), 2, "bad sample line: {line}");
        }
    }

    #[test]
    fn comparison_gates_on_total_and_phases_with_higher_is_worse() {
        let base = sample_snapshot();
        let mut cand = sample_snapshot();
        // Inflate the candidate's find_cell phase well past CI + threshold.
        let wfp = &mut cand.series[1].points[0];
        let fc = wfp
            .phases
            .iter_mut()
            .find(|p| p.phase == "find_cell")
            .unwrap();
        fc.cycles_per_op *= 2.0;
        let cmp = compare_cycles(&base, &cand, 10.0);
        let fc_delta = cmp
            .deltas
            .iter()
            .find(|d| d.queue == "WF-10" && d.phase == "find_cell")
            .expect("phase key matched");
        assert!(fc_delta.regressed, "{fc_delta:?}");
        // Totals unchanged → no total regression.
        let total = cmp
            .deltas
            .iter()
            .find(|d| d.queue == "WF-10" && d.phase == "total")
            .unwrap();
        assert!(!total.regressed);
        assert!(cmp.render().contains("REGRESSION"));

        // The mirror image — candidate cheaper — improves, never fails.
        let cmp = compare_cycles(&cand, &base, 10.0);
        let fc_delta = cmp
            .deltas
            .iter()
            .find(|d| d.queue == "WF-10" && d.phase == "find_cell")
            .unwrap();
        assert!(fc_delta.improved && !fc_delta.regressed);
        assert!(cmp.regressions().is_empty());
    }

    #[test]
    fn comparison_reports_unmatched_keys() {
        let base = sample_snapshot();
        let mut cand = sample_snapshot();
        let dropped = cand.series[1].points[0].phases.pop().unwrap().phase;
        cand.series.push(CyclesSeries {
            name: "SCQ".into(),
            points: vec![full_point(1, 2.0)],
        });
        let cmp = compare_cycles(&base, &cand, 10.0);
        assert!(cmp
            .unmatched
            .iter()
            .any(|u| u.contains(&dropped) && u.contains("baseline only")));
        assert!(cmp.unmatched.iter().any(|u| u.contains("SCQ")));
    }

    #[test]
    fn trajectory_line_is_one_parsable_json_line() {
        let snap = sample_snapshot();
        let line = cycles_trajectory_line(&snap);
        assert!(!line.contains('\n'));
        let v = json::parse(&line).expect("trajectory line must parse");
        assert_eq!(
            v.get("benchmark").and_then(|x| x.as_str().map(String::from)),
            Some("cycle_ledger".to_string())
        );
        assert!(v.get("delta").is_some());
        assert_eq!(
            v.get("perf").and_then(|x| x.as_str().map(String::from)),
            Some("tsc-only".to_string())
        );
    }
}
