//! Targeted exercises of the wait-free machinery: forced slow paths,
//! patience sweeps, helping, and typed-queue semantics under contention.

use std::sync::atomic::{AtomicU64, Ordering};

use wfqueue::{Config, RawQueue, WfQueue};

/// With patience 0 and heavy contention, both slow paths must actually
/// execute *and* produce correct results (the core of the paper's
/// wait-freedom claim: the slow path is not just a fallback, it works).
#[test]
fn slow_paths_execute_and_stay_correct() {
    // Slow-path traffic needs a lost race, which a single-CPU scheduler
    // may or may not produce in one round — retry until observed (bounded)
    // while asserting correctness every round.
    let mut saw_slow_path = false;
    for _round in 0..20 {
        let q: RawQueue<16> = RawQueue::with_config(Config::wf0());
        let sum = AtomicU64::new(0);
        let got = AtomicU64::new(0);
        const TOTAL: u64 = 40_000;
        std::thread::scope(|s| {
            for t in 0..2u64 {
                let q = &q;
                s.spawn(move || {
                    let mut h = q.register();
                    for v in 0..TOTAL / 2 {
                        h.enqueue(t * (TOTAL / 2) + v + 1);
                    }
                });
            }
            for _ in 0..2 {
                let q = &q;
                let sum = &sum;
                let got = &got;
                s.spawn(move || {
                    let mut h = q.register();
                    loop {
                        if got.load(Ordering::Relaxed) >= TOTAL {
                            break;
                        }
                        if let Some(v) = h.dequeue() {
                            sum.fetch_add(v, Ordering::Relaxed);
                            got.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert_eq!(sum.load(Ordering::Relaxed), (1..=TOTAL).sum::<u64>());
        let st = q.stats();
        if st.enq_slow + st.deq_slow > 0 {
            saw_slow_path = true;
            break;
        }
    }
    assert!(
        saw_slow_path,
        "patience 0 never hit a slow path in 20 contended rounds"
    );
}

/// Patience sweep: behaviour must be identical for every patience value;
/// only the path mix may differ.
#[test]
fn every_patience_yields_identical_semantics() {
    for patience in [0u32, 1, 2, 5, 10, 100] {
        let q: RawQueue<64> =
            RawQueue::with_config(Config::default().with_patience(patience));
        let mut h = q.register();
        for v in 1..=2_000u64 {
            h.enqueue(v);
        }
        for v in 1..=2_000u64 {
            assert_eq!(h.dequeue(), Some(v), "patience {patience}");
        }
        assert_eq!(h.dequeue(), None);
    }
}

/// The helping ring: a thread that *only* dequeues must end up helping
/// peers' enqueue requests when they are starved (paper Invariants 2–3).
/// We can't deterministically starve an enqueuer, but we can verify the
/// help counters move under a WF-0 mixed load.
#[test]
fn helping_happens_under_wf0_contention() {
    let q: RawQueue<16> = RawQueue::with_config(Config::wf0());
    let got = AtomicU64::new(0);
    const TOTAL: u64 = 60_000;
    std::thread::scope(|s| {
        for t in 0..3u64 {
            let q = &q;
            let got = &got;
            s.spawn(move || {
                let mut h = q.register();
                let mut rng = wfq_sync::XorShift64::for_stream(11, t);
                let tag = (t + 1) << 40;
                let mut c = 0;
                for _ in 0..TOTAL / 3 {
                    if rng.coin() {
                        c += 1;
                        h.enqueue(tag + c);
                    } else if h.dequeue().is_some() {
                        got.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    let st = q.stats();
    // help_deq counts peer-helping dequeues: every successful dequeue
    // helps its current peer (paper line 136), so any substantial number
    // of successful dequeues implies help calls.
    if got.load(Ordering::Relaxed) > 100 {
        assert!(st.help_deq > 0, "peer helping never ran: {st:?}");
    }
}

/// Typed queue under contention with drop-sensitive payloads.
#[test]
fn typed_queue_contended_boxes_survive() {
    let q: WfQueue<Box<[u8; 64]>> = WfQueue::with_config(Config::wf0());
    let consumed = AtomicU64::new(0);
    const TOTAL: u64 = 6_000;
    std::thread::scope(|s| {
        for _ in 0..2 {
            let q = &q;
            s.spawn(move || {
                let mut h = q.handle();
                for i in 0..TOTAL / 2 {
                    h.enqueue(Box::new([i as u8; 64]));
                }
            });
        }
        for _ in 0..2 {
            let q = &q;
            let consumed = &consumed;
            s.spawn(move || {
                let mut h = q.handle();
                loop {
                    if consumed.load(Ordering::Relaxed) >= TOTAL {
                        break;
                    }
                    if let Some(b) = h.dequeue() {
                        // Every byte in the box must agree (no torn boxes).
                        let first = b[0];
                        assert!(b.iter().all(|&x| x == first));
                        consumed.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    assert!(q.is_empty());
}

/// Handles may migrate across threads (Send) as long as use is exclusive.
#[test]
fn handle_migrates_between_threads() {
    let q: RawQueue<64> = RawQueue::new();
    let mut h = q.register();
    h.enqueue(1);
    let mut h = std::thread::scope(|s| {
        s.spawn(move || {
            h.enqueue(2);
            h
        })
        .join()
        .unwrap()
    });
    assert_eq!(h.dequeue(), Some(1));
    assert_eq!(h.dequeue(), Some(2));
}

/// Many registrations from many short-lived threads while traffic flows.
#[test]
fn registration_churn_during_traffic() {
    let q: RawQueue<32> = RawQueue::new();
    let stop = AtomicU64::new(0);
    std::thread::scope(|s| {
        // Steady traffic.
        {
            let q = &q;
            let stop = &stop;
            s.spawn(move || {
                let mut h = q.register();
                let mut v = 1;
                while stop.load(Ordering::Relaxed) == 0 {
                    h.enqueue(v);
                    let _ = h.dequeue();
                    v += 1;
                }
            });
        }
        // Churning registrants.
        {
            let q = &q;
            let stop = &stop;
            s.spawn(move || {
                for round in 0..200u64 {
                    let mut h = q.register();
                    h.enqueue(1_000_000 + round);
                    let _ = h.dequeue();
                    drop(h);
                }
                stop.store(1, Ordering::Relaxed);
            });
        }
    });
}
