//! Observability integration: the flight recorder, the Chrome-trace
//! artifact, the Prometheus exposition, and the starvation watchdog, all
//! exercised against the *real* queue rather than the `wfq-obs` unit
//! fixtures.
//!
//! Most of this file needs `--features trace` (the recorder compiles to
//! nothing otherwise); the watchdog-against-a-real-stall test additionally
//! needs `fault-injection` to park a thread inside its slow path:
//!
//! ```text
//! cargo test -p wfq-integration --features trace,fault-injection
//! ```
//!
//! The file compiles in every feature combination; only the build-mode
//! guard runs without `trace`.

/// The recorder must mirror the cargo feature exactly — same contract as
/// `wfq_sync::fault::ENABLED` for the injection layer.
#[test]
fn recorder_matches_build_mode() {
    assert_eq!(wfq_obs::ENABLED, cfg!(feature = "trace"));
    // The macro is an expression in both builds.
    let _: () = wfq_obs::record!(wfq_obs::EventKind::EnqFast, 0u64);
}

#[cfg(feature = "trace")]
mod traced {
    use std::collections::BTreeSet;

    use wfq_harness::json::{self, Value};
    use wfqueue::{Config, RawQueue};

    /// Unique-per-test artifact path under the system temp dir.
    fn artifact(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("wfq-obs-{}-{name}", std::process::id()))
    }

    /// The acceptance criterion for the trace pipeline: a contended
    /// multi-handle run, drained and serialized, must yield Chrome-trace
    /// JSON that (a) parses, (b) has the `traceEvents` shape Perfetto
    /// loads, and (c) contains protocol events from at least three
    /// distinct handles (`tid`s).
    #[test]
    fn contended_run_yields_a_parseable_trace_with_three_handles() {
        let q = RawQueue::<16>::with_config(Config::default().with_patience(1));
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let q = &q;
                s.spawn(move || {
                    let mut h = q.register();
                    for k in 0..200 {
                        if (k + t) % 2 == 0 {
                            h.enqueue(t * 1000 + k + 1);
                        } else {
                            let _ = h.dequeue();
                        }
                    }
                });
            }
        });

        let path = artifact("contended.trace.json");
        let n = wfq_harness::dump_chrome_trace(&path).expect("dump trace");
        assert!(n > 0, "trace-enabled run recorded no events");

        let doc = std::fs::read_to_string(&path).expect("read artifact back");
        let root = json::parse(&doc).expect("chrome trace must be valid JSON");
        let events = root
            .get("traceEvents")
            .and_then(Value::as_arr)
            .expect("top-level traceEvents array");
        assert!(events.len() >= n, "serializer lost events");

        // Protocol events (not the per-track `M` metadata) from ≥3 tids.
        let mut tids = BTreeSet::new();
        for e in events {
            let ph = e.get("ph").and_then(Value::as_str).expect("ph field");
            assert!(
                matches!(ph, "M" | "X" | "i"),
                "unexpected event phase {ph:?}"
            );
            if ph != "M" {
                let tid = e.get("tid").and_then(Value::as_num).expect("tid field");
                tids.insert(tid as u64);
                assert!(e.get("ts").is_some(), "event without timestamp");
                assert!(e.get("name").is_some(), "event without name");
            }
        }
        assert!(
            tids.len() >= 3,
            "events from only {} handles (want ≥3): {tids:?}",
            tids.len()
        );
        let _ = std::fs::remove_file(&path);
    }

    /// The acceptance criterion for help-chain reconstruction: a contended
    /// 16-thread run with patience 0 (every losing fast path publishes a
    /// help-ring request) must reconstruct at least one **multi-hop** chain
    /// — an episode where a thread other than the requester contributed a
    /// help event with the matching op id — with properly matched
    /// open/close pairs. Contention is scheduler-dependent, so the test
    /// retries a few fresh queues; each round scopes its assertions to its
    /// own traffic with [`wfq_obs::mark_ns`] (other tests in this binary
    /// share the recorder registry).
    #[test]
    fn sixteen_thread_contention_reconstructs_a_multi_hop_help_chain() {
        use wfq_harness::spans;

        for round in 0..10 {
            let mark = wfq_obs::mark_ns();
            let q = RawQueue::<16>::with_config(Config::default().with_patience(0));
            std::thread::scope(|s| {
                for t in 0..16u64 {
                    let q = &q;
                    s.spawn(move || {
                        let mut h = q.register();
                        for k in 0..150u64 {
                            // Dequeue-heavy mix: empty dequeues ⊤-seal head
                            // cells, so patience-0 enqueues lose their only
                            // fast-path attempt and publish requests that
                            // the dequeuers' help_enq then commits.
                            if (t + k) % 3 == 0 {
                                h.enqueue((t + 1) * 10_000 + k + 1);
                            } else {
                                let _ = h.dequeue();
                            }
                        }
                    });
                }
            });

            let mut traces = wfq_obs::drain();
            for t in &mut traces {
                t.events.retain(|e| e.ts_ns >= mark);
            }
            let report = spans::reconstruct(&traces);

            // Pairing invariants hold for whatever was reconstructed.
            for c in &report.chains {
                assert!(
                    c.span.end_ns >= c.span.start_ns,
                    "span close precedes open: {:?}",
                    c.span
                );
                assert!(c.depth >= 1, "every matched episode counts itself");
                assert!(
                    c.helpers.iter().all(|&h| h != c.span.recorder),
                    "requester listed among its own helpers: {c:?}"
                );
            }
            assert_eq!(
                report.residency.count() as usize,
                report.chains.len(),
                "one residency sample per matched episode"
            );

            if let Some(c) = report.chains.iter().find(|c| c.is_multi_hop()) {
                assert!(c.depth >= 2, "a multi-hop chain spans ≥2 threads: {c:?}");
                assert!(
                    c.hops.iter().any(|h| h.helper != c.span.recorder),
                    "multi-hop chain without a cross-thread hop: {c:?}"
                );
                assert!(report.max_chain_depth >= 2);
                assert!(
                    report.helper_latency.count() > 0,
                    "cross-thread hops must feed the helper-latency histogram"
                );
                eprintln!("round {round}:\n{}", report.render());
                return;
            }
            eprintln!(
                "round {round}: {} episodes but no multi-hop chain yet",
                report.chains.len()
            );
        }
        panic!("16 contended threads never produced a multi-hop help chain in 10 rounds");
    }

    /// The Prometheus artifact for a real run: every line is a comment or
    /// a `name value` sample, counters cover the stats that drive Table 2,
    /// and the gauges derived from a live queue are present and sane.
    #[test]
    fn metrics_exposition_covers_stats_and_gauges() {
        let q = RawQueue::<16>::new();
        let mut h = q.register();
        for v in 1..=100u64 {
            h.enqueue(v);
        }
        for _ in 0..40 {
            let _ = h.dequeue();
        }
        drop(h);

        let path = artifact("metrics.prom");
        wfq_harness::write_metrics(&path, &q.stats(), Some(&q.gauges()))
            .expect("write metrics");
        let text = std::fs::read_to_string(&path).expect("read metrics back");

        for line in text.lines() {
            assert!(
                line.starts_with('#') || line.split(' ').count() == 2,
                "malformed exposition line: {line:?}"
            );
        }
        for metric in [
            "wfq_enq_fast_total",
            "wfq_deq_fast_total",
            "wfq_head_index",
            "wfq_live_segments",
            "wfq_help_ring_occupancy",
        ] {
            assert!(
                text.contains(&format!("\n{metric} "))
                    || text.starts_with(&format!("{metric} ")),
                "metric {metric} missing from exposition:\n{text}"
            );
        }
        let _ = std::fs::remove_file(&path);
    }
}

/// Parking a *real* queue thread inside its slow path and catching it with
/// the watchdog needs both the recorder (progress words) and the
/// fault-injection hooks (the parking mechanism).
#[cfg(all(feature = "trace", feature = "fault-injection"))]
mod watchdog_integration {
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::Duration;

    use wfq_obs::{EventKind, Watchdog, WatchdogConfig};
    use wfq_sync::fault::{self, FaultPlan};
    use wfqueue::{Config, RawQueue};

    #[derive(Default)]
    struct Event(Mutex<bool>, Condvar);

    impl Event {
        fn set(&self) {
            *self.0.lock().unwrap() = true;
            self.1.notify_all();
        }
        fn wait(&self) {
            let mut g = self.0.lock().unwrap();
            while !*g {
                g = self.1.wait(g).unwrap();
            }
        }
    }

    /// Drives an enqueuer into `enq_slow` deterministically (dequeues on an
    /// empty queue ⊤-seal the head cells, so a patience-0 enqueue loses its
    /// only fast-path attempt), parks it just before the commit point, and
    /// asserts the watchdog reports exactly that thread stuck in exactly
    /// that span — then releases it and proves the operation completes.
    #[test]
    fn watchdog_catches_a_thread_parked_in_enq_slow() {
        let q = RawQueue::<16>::with_config(Config::default().with_patience(0));
        let parked = Arc::new(Event::default());
        let release = Arc::new(Event::default());

        // Seal cell 0: an empty dequeue's help_enq ⊤-poisons the cell its
        // FAA claimed.
        let mut h = q.register();
        assert_eq!(h.dequeue(), None);

        let dog = Watchdog::spawn(WatchdogConfig {
            interval: Duration::from_millis(2),
            threshold: Duration::from_millis(20),
        });

        std::thread::scope(|s| {
            {
                let q = &q;
                let (parked, release) = (Arc::clone(&parked), Arc::clone(&release));
                s.spawn(move || {
                    let p = Arc::clone(&parked);
                    let r = Arc::clone(&release);
                    fault::with_plan(
                        FaultPlan::new().hook_at(
                            "enq_slow::pre_commit",
                            0,
                            Arc::new(move |_| {
                                p.set();
                                r.wait();
                            }),
                        ),
                        || {
                            let mut h = q.register();
                            h.enqueue(42); // sealed cell 0 → enq_slow → park
                        },
                    );
                });
            }

            parked.wait();
            // Past the threshold, the sampler must flag the parked thread.
            std::thread::sleep(Duration::from_millis(80));
            let reports = dog.reports();
            let stall = reports
                .iter()
                .find(|r| r.kind == EventKind::EnqSlowEnter)
                .unwrap_or_else(|| panic!("parked enq_slow not reported: {reports:?}"));
            assert!(stall.stalled >= Duration::from_millis(20));
            release.set();
        });

        drop(dog);
        // The parked operation completed once released; nothing was lost.
        assert_eq!(h.dequeue(), Some(42));
    }

    /// The batch slow path is watched too: a `dequeue_batch` straggler
    /// falls back to `deq_slow`, and a thread parked inside that fallback
    /// (here: just before its self-help announces a candidate cell) must
    /// be reported as a `DeqSlowEnter` stall — the nested help span the
    /// self-help opens must not disarm the progress words.
    #[test]
    fn watchdog_catches_a_batch_dequeue_straggler_parked_in_deq_slow() {
        let q = RawQueue::<16>::with_config(Config::default().with_patience(0));
        let parked = Arc::new(Event::default());
        let release = Arc::new(Event::default());

        // Seal cell 0 (empty dequeue), then batch-enqueue: the deposit
        // into sealed cell 0 stragglers, so the batch abandons its other
        // pre-claimed cells and re-enqueues — leaving abandoned ⊥ cells
        // ahead of the values. A later batch dequeue that claims those
        // cells stragglers in turn and enters `deq_slow`.
        let mut h = q.register();
        assert_eq!(h.dequeue(), None);
        h.enqueue_batch(&[1, 2, 3]);
        assert!(
            q.stats().enq_batch_stragglers >= 1,
            "setup: no enq straggler"
        );

        let dog = Watchdog::spawn(WatchdogConfig {
            interval: Duration::from_millis(2),
            threshold: Duration::from_millis(20),
        });

        let mut out = Vec::new();
        std::thread::scope(|s| {
            {
                let q = &q;
                let out = &mut out;
                let (parked, release) = (Arc::clone(&parked), Arc::clone(&release));
                s.spawn(move || {
                    let p = Arc::clone(&parked);
                    let r = Arc::clone(&release);
                    fault::with_plan(
                        FaultPlan::new().hook_at(
                            "help_deq::pre_announce",
                            0,
                            Arc::new(move |_| {
                                p.set();
                                r.wait();
                            }),
                        ),
                        || {
                            let mut h = q.register();
                            h.dequeue_batch(out, 3);
                        },
                    );
                });
            }

            parked.wait();
            std::thread::sleep(Duration::from_millis(80));
            let reports = dog.reports();
            let stall = reports
                .iter()
                .find(|r| r.kind == EventKind::DeqSlowEnter)
                .unwrap_or_else(|| panic!("parked batch deq_slow not reported: {reports:?}"));
            assert!(stall.stalled >= Duration::from_millis(20));
            release.set();
        });

        drop(dog);
        // Once released, the batch recovered every value despite the
        // stragglers, in order.
        assert_eq!(out, vec![1, 2, 3]);
        assert!(
            q.stats().deq_batch_stragglers >= 1,
            "setup: the batch dequeue never straggled"
        );
    }
}
