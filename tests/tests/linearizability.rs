//! Linearizability certification of every queue in the repository, using
//! the sound-and-complete checker on many small recorded histories — plus
//! a deliberately broken queue as a negative control proving the checker
//! has teeth.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use wfq_baselines::{
    BenchQueue, CcQueue, KpQueue, Lcrq, MsQueue, MutexQueue, QueueHandle, Scq, Wcq, Wf0,
};
use wfq_checker::{check_linearizable, check_necessary, History, OpKind, Recorder};
use wfqueue::RawQueue;

/// Records a small concurrent run: `threads` workers, `ops_per_thread`
/// mixed operations each, values unique per thread.
fn record<Q: BenchQueue>(threads: usize, ops_per_thread: usize, seed: u64) -> History {
    let q = Q::new();
    let rec = Recorder::new();
    std::thread::scope(|s| {
        for t in 0..threads {
            let q = &q;
            let mut tr = rec.thread();
            s.spawn(move || {
                let mut h = q.register();
                let mut rng = wfq_sync::XorShift64::for_stream(seed, t as u64);
                let tag = ((t as u64 + 1) << 32) | 1;
                let mut counter = 0;
                for _ in 0..ops_per_thread {
                    if rng.coin() {
                        counter += 1;
                        let v = tag + counter;
                        let i = tr.invoke();
                        h.enqueue(v);
                        tr.record(OpKind::Enqueue(v), i);
                    } else {
                        let i = tr.invoke();
                        let r = h.dequeue();
                        tr.record(OpKind::Dequeue(r), i);
                    }
                }
            });
        }
    });
    rec.finish()
}

fn certify<Q: BenchQueue>() {
    // Many short rounds beat one long round: each round's full state space
    // is searchable, and rounds vary the interleaving via the seed.
    for seed in 0..12 {
        let h = record::<Q>(3, 14, seed);
        assert_eq!(
            check_necessary(&h),
            Ok(()),
            "{}: necessary conditions failed (seed {seed})",
            Q::NAME
        );
        let res = check_linearizable(&h, 2_000_000);
        assert!(
            res.is_ok(),
            "{}: not linearizable (seed {seed}): {res:?}\nhistory: {h:?}",
            Q::NAME
        );
    }
}

#[test]
fn wf10_is_linearizable() {
    certify::<RawQueue>();
}

#[test]
fn wf0_is_linearizable() {
    certify::<Wf0>();
}

#[test]
fn msqueue_is_linearizable() {
    certify::<MsQueue>();
}

#[test]
fn lcrq_is_linearizable() {
    certify::<Lcrq>();
}

#[test]
fn ccqueue_is_linearizable() {
    certify::<CcQueue>();
}

#[test]
fn kpqueue_is_linearizable() {
    certify::<KpQueue>();
}

#[test]
fn mutex_queue_is_linearizable() {
    certify::<MutexQueue>();
}

#[test]
fn scq_is_linearizable() {
    certify::<Scq>();
}

#[test]
fn wcq_is_linearizable() {
    certify::<Wcq>();
}

// Patience 0 routes every wCQ operation through the helping records, so
// this certifies the slow path (publish → help → finalize) itself, not
// just the SCQ-shaped fast path the default patience almost always takes.
struct WcqSlow(Wcq);

struct WcqSlowHandle<'q>(wfq_baselines::wcq::WcqHandle<'q>);

impl QueueHandle for WcqSlowHandle<'_> {
    fn enqueue(&mut self, v: u64) {
        self.0.enqueue(v);
    }
    fn dequeue(&mut self) -> Option<u64> {
        self.0.dequeue()
    }
}

impl BenchQueue for WcqSlow {
    type Handle<'q> = WcqSlowHandle<'q>;
    const NAME: &'static str = "wCQ-p0";
    fn new() -> Self {
        WcqSlow(Wcq::with_patience(0))
    }
    fn register(&self) -> Self::Handle<'_> {
        WcqSlowHandle(self.0.register())
    }
}

#[test]
fn wcq_slow_path_is_linearizable() {
    certify::<WcqSlow>();
}

// ---------------------------------------------------------------------
// Negative control: a queue with a real linearizability bug (dequeue
// takes the *newest* element under contention 25% of the time) must be
// caught by the checker.
// ---------------------------------------------------------------------

struct BrokenQueue {
    inner: Mutex<Vec<u64>>,
    flips: AtomicU64,
}

struct BrokenHandle<'q>(&'q BrokenQueue);

impl QueueHandle for BrokenHandle<'_> {
    fn enqueue(&mut self, v: u64) {
        self.0.inner.lock().unwrap().push(v);
    }
    fn dequeue(&mut self) -> Option<u64> {
        let mut g = self.0.inner.lock().unwrap();
        if g.is_empty() {
            return None;
        }
        let n = self.0.flips.fetch_add(1, Ordering::Relaxed);
        if n % 4 == 3 {
            g.pop() // LIFO behaviour: the bug
        } else {
            Some(g.remove(0))
        }
    }
}

impl BenchQueue for BrokenQueue {
    type Handle<'q> = BrokenHandle<'q>;
    const NAME: &'static str = "BROKEN";
    fn new() -> Self {
        BrokenQueue {
            inner: Mutex::new(Vec::new()),
            flips: AtomicU64::new(0),
        }
    }
    fn register(&self) -> Self::Handle<'_> {
        BrokenHandle(self)
    }
}

#[test]
fn checker_catches_a_broken_queue() {
    let mut caught = false;
    for seed in 0..20 {
        let h = record::<BrokenQueue>(3, 14, seed);
        let necessary_bad = check_necessary(&h).is_err();
        let search_bad = !check_linearizable(&h, 2_000_000).is_ok();
        if necessary_bad || search_bad {
            caught = true;
            break;
        }
    }
    assert!(caught, "a 25%-LIFO queue evaded 20 rounds of checking");
}

#[test]
fn checkers_agree_on_recorded_histories() {
    // Whenever the necessary-condition checker flags a history, the
    // exhaustive checker must reject it too (soundness cross-check).
    for seed in 0..10 {
        let h = record::<BrokenQueue>(2, 10, 100 + seed);
        if check_necessary(&h).is_err() {
            assert!(
                !check_linearizable(&h, 2_000_000).is_ok(),
                "necessary-condition false positive on seed {seed}: {h:?}"
            );
        }
    }
}
