//! Cycle-ledger integration: the perf-counter layer's graceful
//! degradation contract (every build) and the phase ledger's coverage of
//! real queue operations (`--features cycles`).
//!
//! The degradation tests are the acceptance criterion for containers and
//! CI runners without a vPMU or with `perf_event_paranoid` locked down:
//! the whole suite must run — and these tests must pass — with
//! `WFQ_PERF_DENY=1` exported, and nothing may panic when
//! `perf_event_open` is denied.

use std::sync::Mutex;

use wfq_obs::{CounterGroup, CounterKind, PerfStatus, ALL_COUNTERS, PERF_DENY_ENV};

/// Serializes the tests that mutate the deny environment variable —
/// `CounterGroup::open` reads it, and tests in this binary run on
/// parallel threads of one process.
static ENV_LOCK: Mutex<()> = Mutex::new(());

fn spin(n: u64) -> u64 {
    let mut acc = 0u64;
    for i in 0..n {
        acc = std::hint::black_box(acc.wrapping_add(i));
    }
    acc
}

#[test]
fn denied_perf_degrades_to_tsc_only_without_panicking() {
    let _guard = ENV_LOCK.lock().unwrap();
    // SAFETY: guarded by ENV_LOCK against the other env-reading test.
    unsafe { std::env::set_var(PERF_DENY_ENV, "1") };
    let group = CounterGroup::open();
    let result = (|| {
        match group.status() {
            PerfStatus::TscOnly { reason } => assert_eq!(reason, PERF_DENY_ENV),
            PerfStatus::Hardware { .. } => panic!("deny env must force TSC-only mode"),
        }
        assert_eq!(group.status().mode(), "tsc-only");

        let s0 = group.snapshot();
        spin(100_000);
        let s1 = group.snapshot();
        let d = s1.delta_since(&s0);
        // Estimated-vs-measured reporting: cycles exist (TSC-derived) but
        // are flagged as estimates; every other counter is unavailable
        // and reads 0.
        assert!(d.count(CounterKind::Cycles) > 0, "TSC estimate must advance");
        assert!(!d.is_measured(CounterKind::Cycles));
        assert!(d.is_available(CounterKind::Cycles));
        for kind in ALL_COUNTERS {
            if kind != CounterKind::Cycles {
                assert!(!d.is_available(kind), "{} must be unavailable", kind.name());
                assert_eq!(d.count(kind), 0);
            }
        }
    })();
    unsafe { std::env::remove_var(PERF_DENY_ENV) };
    std::hint::black_box(result);
}

#[test]
fn perf_open_never_fails_whatever_the_environment_grants() {
    let _guard = ENV_LOCK.lock().unwrap();
    // No deny override: take whatever this kernel/container offers. The
    // contract is the same either way — open succeeds, snapshots advance,
    // flags are coherent.
    let externally_denied = std::env::var_os(PERF_DENY_ENV).is_some();
    let group = CounterGroup::open();
    match group.status() {
        PerfStatus::Hardware { .. } => {
            assert!(!externally_denied, "deny env must never yield hardware mode")
        }
        PerfStatus::TscOnly { reason } => {
            assert!(!reason.is_empty(), "degradation must carry its cause")
        }
    }
    let s0 = group.snapshot();
    spin(100_000);
    let d = group.snapshot().delta_since(&s0);
    assert!(d.count(CounterKind::Cycles) > 0);
    for kind in ALL_COUNTERS {
        // A counter that was never measured is either a TSC estimate
        // (cycles) or an unavailable zero — never a phantom reading.
        if !d.is_measured(kind) && kind != CounterKind::Cycles {
            assert_eq!(d.count(kind), 0, "{} reported without measurement", kind.name());
        }
    }
}

#[cfg(feature = "cycles")]
mod ledger_coverage {
    use wfq_baselines::BenchQueue;
    use wfq_obs::{clock, ledger_totals, Phase, ALL_PHASES, CYCLES_ENABLED};
    use wfqueue::RawQueue;

    const PAIRS: u64 = 5_000;

    /// Runs a pair loop on a fresh thread (fresh thread-local ledger) and
    /// returns (ledger delta, wall ticks of the loop).
    fn run_pairs() -> (wfq_obs::LedgerTotals, u64) {
        std::thread::spawn(|| {
            let q = <RawQueue as BenchQueue>::new();
            let mut h = q.register();
            let before = ledger_totals();
            let t0 = clock::raw_now();
            for i in 1..=PAIRS {
                h.enqueue(i);
                std::hint::black_box(h.dequeue());
            }
            let wall = clock::raw_now().saturating_sub(t0);
            (ledger_totals().delta_since(&before), wall)
        })
        .join()
        .unwrap()
    }

    #[test]
    fn real_queue_ops_populate_every_hot_path_phase() {
        assert!(CYCLES_ENABLED);
        let (d, _) = run_pairs();
        // The Glue envelope brackets each op exactly once.
        assert_eq!(d.entries_of(Phase::Glue), 2 * PAIRS);
        // Single-threaded pairs take the fast path: one FAA span per
        // enqueue, one emptiness-probe + one FAA span per dequeue... at
        // minimum, every op claims an index.
        assert!(d.entries_of(Phase::Faa) >= 2 * PAIRS);
        for p in [Phase::FindCell, Phase::CellCas, Phase::Stats, Phase::Hazard] {
            assert!(d.entries_of(p) > 0, "{} never entered", p.name());
            assert!(d.ticks_of(p) > 0, "{} recorded no time", p.name());
        }
        // The uncontended loop never needs the slow path.
        assert_eq!(d.entries_of(Phase::SlowPath), 0);
        assert_eq!(d.overflows, 0, "nesting must fit MAX_NEST_DEPTH");
    }

    #[test]
    fn phase_self_times_sum_within_the_measured_wall_window() {
        let (d, wall) = run_pairs();
        let sum: u64 = ALL_PHASES.iter().map(|p| d.ticks_of(*p)).sum();
        assert_eq!(sum, d.total_ticks());
        // Self-time accounting cannot invent time: the per-phase sum is
        // bounded by the wall window of the loop (hook edges land between
        // spans, so strictly less in practice).
        assert!(
            sum <= wall,
            "phase sum {sum} exceeds the wall window {wall}"
        );
        // ... and the ledger must cover the bulk of it: the Glue envelope
        // brackets every op end to end, so only loop control and hook
        // edges live outside. A generous floor still catches a detached
        // ledger (e.g. phases recording into the void).
        assert!(
            sum * 10 >= wall * 3,
            "ledger covers {sum} of {wall} wall ticks — less than 30%"
        );
    }
}

#[cfg(not(feature = "cycles"))]
mod hooks_off {
    use wfq_baselines::BenchQueue;
    use wfq_obs::{ledger_totals, CYCLES_ENABLED};
    use wfqueue::RawQueue;

    #[test]
    fn default_build_records_nothing() {
        assert!(!CYCLES_ENABLED);
        let q = <RawQueue as BenchQueue>::new();
        let mut h = q.register();
        for i in 1..=100 {
            h.enqueue(i);
            std::hint::black_box(h.dequeue());
        }
        let t = ledger_totals();
        assert_eq!(t.total_entries(), 0);
        assert_eq!(t.total_ticks(), 0);
    }
}
