//! Linearizability certification of the batch fast path (DESIGN.md §10).
//!
//! The checker treats a batch call as k *adjacent* atomic ops
//! (`wfq_checker::BatchPos`): nothing may interleave between a batch's
//! elements and their in-batch order is fixed. On the wait-free queue that
//! strict claim holds exactly when every element of the batch stayed on the
//! one-FAA fast path — a straggler falls back to the per-op slow path and
//! may land at a later index, past concurrent single ops. The recorder here
//! therefore certifies at two strengths:
//!
//! - **clean rounds** (no batch straggler/abandon stats movement): full
//!   adjacency links, exhaustive check — the batch really was atomic;
//! - **contended rounds**: links stripped, elements become k same-interval
//!   ops — conservation and real-time order still certified.
//!
//! A reversing "broken batch" queue is the negative control: only the
//! adjacency-extended search catches it (its elements share one interval,
//! so no interval-based necessary condition can).

use std::collections::VecDeque;
use std::sync::Mutex;

use wfq_checker::{check_linearizable, check_necessary, History, OpKind, Recorder};
use wfqueue::{Config, RawQueue};

const MAX_BATCH: u64 = 4;

/// Records `threads` workers mixing single ops with batch ops of width
/// 2..=MAX_BATCH against a queue pre-seeded with six values (recorded as a
/// prefix batch). The seeding plus a 2:1 enqueue bias keeps the queue away
/// from empty, because an empty probe seals the next tail cell (⊤) without
/// advancing `T`, which sends the following batch enqueue's first element
/// down the straggler path — legal, but it forfeits strict adjacency under
/// concurrency. Returns the history (batch ops recorded with adjacency
/// links) and whether the round was *clean* — no batch element left the
/// fast path, so the links are the truth.
fn record_mixed(config: Config, threads: usize, actions: usize, seed: u64) -> (History, bool) {
    let q: RawQueue<16> = RawQueue::with_config(config);
    let rec = Recorder::new();
    {
        // Seed prefix on a fresh queue: always a clean one-FAA batch.
        let mut tr = rec.thread();
        let mut h = q.register();
        let vals: Vec<u64> = (1..=6).map(|j| (99u64 << 32) | j).collect();
        let i = tr.invoke();
        h.enqueue_batch(&vals);
        tr.record_enqueue_batch(&vals, i);
    }
    std::thread::scope(|s| {
        for t in 0..threads {
            let q = &q;
            let mut tr = rec.thread();
            s.spawn(move || {
                let mut h = q.register();
                let mut rng = wfq_sync::XorShift64::for_stream(seed, t as u64);
                let tag = ((t as u64 + 1) << 32) | 1;
                let mut counter = 0u64;
                let mut out = Vec::new();
                for _ in 0..actions {
                    match rng.next_below(6) {
                        0 | 1 => {
                            counter += 1;
                            let v = tag + counter;
                            let i = tr.invoke();
                            h.enqueue(v);
                            tr.record(OpKind::Enqueue(v), i);
                        }
                        2 => {
                            let i = tr.invoke();
                            let r = h.dequeue();
                            tr.record(OpKind::Dequeue(r), i);
                        }
                        3 | 4 => {
                            let k = rng.next_in(2, MAX_BATCH);
                            let vals: Vec<u64> = (0..k)
                                .map(|j| tag + counter + 1 + j)
                                .collect();
                            counter += k;
                            let i = tr.invoke();
                            h.enqueue_batch(&vals);
                            tr.record_enqueue_batch(&vals, i);
                        }
                        _ => {
                            let k = rng.next_in(2, MAX_BATCH) as usize;
                            out.clear();
                            let i = tr.invoke();
                            h.dequeue_batch(&mut out, k);
                            tr.record_dequeue_batch(&out, i);
                        }
                    }
                }
            });
        }
    });
    let s = q.stats();
    let clean =
        s.enq_batch_stragglers == 0 && s.enq_batch_abandoned == 0 && s.deq_batch_stragglers == 0;
    (rec.finish(), clean)
}

/// Strips the adjacency links, demoting each batch to k same-interval ops.
fn unlink(mut h: History) -> History {
    for op in &mut h.ops {
        op.batch = None;
    }
    h
}

fn certify(config: Config, name: &str) -> usize {
    let mut clean_rounds = 0;
    for seed in 0..16 {
        let (h, clean) = record_mixed(config, 3, 8, seed);
        assert!(
            h.len() <= 100,
            "{name}: history too large for the exhaustive checker ({})",
            h.len()
        );
        let h = if clean {
            clean_rounds += 1;
            h
        } else {
            unlink(h)
        };
        assert_eq!(
            check_necessary(&h),
            Ok(()),
            "{name}: necessary conditions failed (seed {seed})"
        );
        let res = check_linearizable(&h, 4_000_000);
        assert!(
            res.is_ok(),
            "{name}: mixed batch/single history not linearizable \
             (seed {seed}, clean = {clean}): {res:?}\nhistory: {h:?}"
        );
    }
    clean_rounds
}

#[test]
fn wf10_mixed_batch_histories_linearize() {
    let clean = certify(Config::wf10(), "WF-10");
    // The strict (adjacency-linked) branch must actually run: at 3 threads
    // the one-FAA fast path wins nearly every round.
    assert!(
        clean >= 8,
        "only {clean}/16 rounds stayed on the batch fast path — \
         the adjacency certification barely ran"
    );
}

#[test]
fn wf0_mixed_batch_histories_linearize() {
    // Patience 0 maximizes slow-path traffic; rounds that fall back are
    // still certified for conservation and real-time order.
    certify(Config::wf0(), "WF-0");
}

#[test]
fn single_thread_batches_are_strictly_adjacent() {
    // No concurrency, so the adjacency links hold even when a batch takes
    // the straggler fallback (an empty probe seals the next tail cell and
    // forces exactly that) — the fallback preserves within-batch order via
    // monotone final cell indices, and no other thread can interleave.
    // Certify with the links *always* on, dirty rounds included.
    for seed in 100..108 {
        let (h, _clean) = record_mixed(Config::wf10(), 1, 12, seed);
        assert!(h.ops.iter().any(|o| o.batch.is_some()), "no batch recorded");
        assert_eq!(check_necessary(&h), Ok(()));
        assert!(
            check_linearizable(&h, 4_000_000).is_ok(),
            "sequential batch execution must satisfy strict adjacency \
             (seed {seed}): {h:?}"
        );
    }
}

// ---------------------------------------------------------------------
// Negative control: a queue whose `enqueue_batch` reverses the slice.
// Each element still linearizes within the call's interval, so interval-
// based conditions all pass — only the adjacency extension (in-batch
// order is fixed) convicts it.
// ---------------------------------------------------------------------

struct ReversingBatchQueue(Mutex<VecDeque<u64>>);

impl ReversingBatchQueue {
    fn enqueue_batch(&self, vs: &[u64]) {
        let mut g = self.0.lock().unwrap();
        for &v in vs.iter().rev() {
            g.push_back(v);
        }
    }
    fn dequeue(&self) -> Option<u64> {
        self.0.lock().unwrap().pop_front()
    }
}

#[test]
fn reversed_batch_enqueue_is_caught_by_adjacency_only() {
    let q = ReversingBatchQueue(Mutex::new(VecDeque::new()));
    let rec = Recorder::new();
    {
        let mut tr = rec.thread();
        let vals = [1u64, 2, 3];
        let i = tr.invoke();
        q.enqueue_batch(&vals);
        tr.record_enqueue_batch(&vals, i);
        let mut got = Vec::new();
        while let Some(v) = {
            let i = tr.invoke();
            let r = q.dequeue();
            tr.record(OpKind::Dequeue(r), i);
            r
        } {
            got.push(v);
        }
        assert_eq!(got, vec![3, 2, 1], "control queue must actually reverse");
    }
    let h = rec.finish();
    // Interval-based necessary conditions are blind to the bug ...
    assert_eq!(check_necessary(&h), Ok(()));
    assert_eq!(check_necessary(&unlink(h.clone())), Ok(()));
    // ... and so is the exhaustive search without the links ...
    assert!(check_linearizable(&unlink(h.clone()), 4_000_000).is_ok());
    // ... but the batch-adjacency extension convicts it.
    assert_eq!(
        check_linearizable(&h, 4_000_000),
        wfq_checker::CheckResult::NotLinearizable
    );
}
