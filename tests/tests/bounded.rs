//! Bounded-memory mode: the segment ceiling, `try_enqueue` backpressure,
//! and stall-tolerant degradation (DESIGN.md §9, docs/ROBUSTNESS.md).
//!
//! The contract under test:
//!
//! - an **unbounded** queue's `try_enqueue` never fails and prices like
//!   `enqueue` (the price half is the `try_enqueue_overhead` bench);
//! - a **bounded** queue accepts at least `(S − 1) × N` values before its
//!   first rejection, keeps live segments at the ceiling, and recovers
//!   fully once the backlog drains;
//! - when headroom is merely *recyclable garbage*, the same-call forced
//!   reclamation pass recovers it and the caller never sees [`Full`];
//! - when a **stalled thread's hazard** pins the garbage, the queue
//!   degrades to rejecting enqueues at bounded memory instead of growing
//!   without bound — and un-degrades when the thread resumes (the
//!   fault-injection soak at the bottom).

use wfqueue::{Config, Full, RawQueue, WfQueue};

const SEG: usize = 16;

#[test]
fn unbounded_try_enqueue_never_fails() {
    let q: RawQueue<SEG> = RawQueue::new();
    let mut h = q.register();
    for v in 1..=(SEG as u64 * 20) {
        h.try_enqueue(v).expect("unbounded queue rejected an enqueue");
    }
    for v in 1..=(SEG as u64 * 20) {
        assert_eq!(h.dequeue(), Some(v));
    }
    assert_eq!(q.stats().enq_rejected, 0);
}

#[test]
fn bounded_fill_rejects_then_recovers_after_drain() {
    const CEILING: u64 = 4;
    let q: RawQueue<SEG> =
        RawQueue::with_config(Config::default().with_segment_ceiling(CEILING));
    let mut h = q.register();

    // Fill: the configured floor is (S − 1) × N accepted values; the first
    // rejection must come before the attempt cap (the gate is conservative
    // by at most one segment).
    let mut accepted = 0u64;
    let cap = CEILING * SEG as u64 * 2;
    let mut saw_full = false;
    for v in 1..=cap {
        match h.try_enqueue(v) {
            Ok(()) => accepted += 1,
            Err(Full(())) => {
                saw_full = true;
                break;
            }
        }
    }
    assert!(saw_full, "bounded queue never rejected within {cap} attempts");
    assert!(
        accepted >= (CEILING - 1) * SEG as u64,
        "rejected too early: only {accepted} values accepted"
    );
    let g = q.gauges();
    assert_eq!(g.segment_ceiling, Some(CEILING));
    assert!(
        g.live_segments <= CEILING,
        "ceiling breached while rejecting: {g:?}"
    );
    assert!(q.stats().enq_rejected > 0);

    // Drain and the queue must un-degrade: the next try_enqueue recovers
    // headroom via the forced pass over the now-consumed prefix.
    for _ in 0..accepted {
        assert!(h.dequeue().is_some(), "accepted value lost");
    }
    assert_eq!(h.dequeue(), None);
    h.try_enqueue(77).expect("queue did not recover after drain");
    assert_eq!(h.dequeue(), Some(77));
}

#[test]
fn forced_cleanup_recycles_instead_of_rejecting() {
    // Shallow pairs traffic through a tight ceiling, with the dequeuer-side
    // threshold too high to ever trip: every segment-boundary crossing must
    // be funded by the *enqueuer's* same-call forced pass recycling the
    // consumed prefix — the caller never sees Full.
    const CEILING: u64 = 4;
    let q: RawQueue<SEG> = RawQueue::with_config(
        Config::default()
            .with_max_garbage(1_000_000)
            .with_segment_ceiling(CEILING),
    );
    let mut h = q.register();
    for v in 1..=(SEG as u64 * 40) {
        h.try_enqueue(v)
            .expect("recyclable garbage must never surface as Full");
        assert_eq!(h.dequeue(), Some(v));
    }
    let s = q.stats();
    assert_eq!(s.enq_rejected, 0);
    assert!(s.forced_cleanups > 0, "forced pass never ran: {s:?}");
    assert!(s.segs_recycled > 0, "nothing recycled: {s:?}");
    let g = q.gauges();
    assert!(g.live_segments <= CEILING, "{g:?}");
}

#[test]
fn spinning_empty_probes_do_not_grow_the_chain() {
    // The dequeue-side half of the memory bound: emptiness probes burn at
    // most ONE cell past the tail (the H > T fast-out), so a consumer
    // spinning on an empty queue cannot push the head frontier — and the
    // segment chain, and RSS — through the ceiling. Without the guard,
    // 10_000 probes here would burn 10_000 cells (625 segments).
    const CEILING: u64 = 2;
    let q: RawQueue<SEG> =
        RawQueue::with_config(Config::default().with_segment_ceiling(CEILING));
    let mut h = q.register();
    for _ in 0..10_000 {
        assert_eq!(h.dequeue(), None);
    }
    let g = q.gauges();
    assert!(
        g.live_segments <= CEILING,
        "empty probes grew the chain: {g:?}"
    );
    // And the fast-out is not sticky: traffic flows normally afterwards.
    for v in 1..=(SEG as u64 * 4) {
        h.try_enqueue(v).expect("probe storm wedged the queue");
        assert_eq!(h.dequeue(), Some(v));
    }
}

#[test]
fn bounded_batch_rejection_is_all_or_nothing() {
    // The batch admission gate runs *before* the claiming FAA and demands
    // headroom for the whole batch, so a rejected `try_enqueue_batch` must
    // leave no trace: no element published, no protocol state disturbed,
    // the slice handed back untouched.
    const CEILING: u64 = 3;
    let q: RawQueue<SEG> =
        RawQueue::with_config(Config::default().with_segment_ceiling(CEILING));
    let mut h = q.register();

    // Fill to the first single-op rejection.
    let mut accepted = Vec::new();
    for v in 1..=CEILING * SEG as u64 * 2 {
        match h.try_enqueue(v) {
            Ok(()) => accepted.push(v),
            Err(Full(())) => break,
        }
    }
    assert!(
        (accepted.len() as u64) < CEILING * SEG as u64 * 2,
        "bounded queue never rejected"
    );
    let before = q.stats();

    // The batch must bounce whole — not strand a prefix.
    let batch: Vec<u64> = (1_000..1_000 + SEG as u64).collect();
    assert_eq!(h.try_enqueue_batch(&batch), Err(Full(())));
    let after = q.stats();
    assert_eq!(
        after.enq_batches, before.enq_batches,
        "rejected batch entered the batch protocol: {after:?}"
    );
    assert!(after.enq_rejected > before.enq_rejected);

    // No partial publication: draining yields exactly the accepted prefix.
    for &v in &accepted {
        assert_eq!(h.dequeue(), Some(v));
    }
    assert_eq!(h.dequeue(), None, "rejected batch leaked an element");

    // Headroom restored by the drain: the identical batch now goes through
    // and comes back FIFO-intact.
    h.try_enqueue_batch(&batch)
        .expect("batch still rejected after drain");
    let mut out = Vec::new();
    assert_eq!(h.dequeue_batch(&mut out, SEG), SEG);
    assert_eq!(out, batch);
}

#[test]
fn batch_admission_gate_is_width_aware() {
    // A fresh ceiling-2 queue has exactly one segment of headroom: a
    // single-op `try_enqueue` clears the gate, but a batch spanning two
    // segments (⌈k/N⌉ = 2) must be rejected up front — the gate prices the
    // whole claim run, not just its first cell.
    let q: RawQueue<SEG> =
        RawQueue::with_config(Config::default().with_segment_ceiling(2));
    let mut h = q.register();
    let wide: Vec<u64> = (1..=2 * SEG as u64).collect();
    assert_eq!(h.try_enqueue_batch(&wide), Err(Full(())));
    h.try_enqueue(7).expect("single op must still fit");
    assert_eq!(h.dequeue(), Some(7));
    assert_eq!(h.dequeue(), None, "rejected wide batch left residue");
}

#[test]
fn typed_full_hands_the_value_back() {
    // Ceiling 1 is the degenerate bound: no headroom was ever available,
    // so the very first try_enqueue is rejected — and must return the
    // boxed value intact, not leak or drop it.
    let q: WfQueue<String, SEG> =
        WfQueue::with_config(Config::default().with_segment_ceiling(1));
    let mut h = q.handle();
    let err = h.try_enqueue("hello".to_string()).unwrap_err();
    assert_eq!(err.into_inner(), "hello");

    // Unbounded typed queues never reject.
    let q: WfQueue<String, SEG> = WfQueue::with_config(Config::default());
    let mut h = q.handle();
    h.try_enqueue("world".to_string()).unwrap();
    assert_eq!(h.dequeue().as_deref(), Some("world"));
}

#[test]
fn owned_handles_expose_the_fallible_api() {
    use std::sync::Arc;
    use wfqueue::{OwnedHandle, OwnedLocalHandle};

    let q: Arc<RawQueue<SEG>> = Arc::new(RawQueue::with_config(
        Config::default().with_segment_ceiling(1),
    ));
    let mut h = OwnedHandle::new(Arc::clone(&q));
    assert_eq!(h.try_enqueue(5), Err(Full(())));

    let tq: Arc<WfQueue<u32, SEG>> = Arc::new(WfQueue::with_config(
        Config::default().with_segment_ceiling(1),
    ));
    let mut th = OwnedLocalHandle::new(Arc::clone(&tq));
    assert_eq!(th.try_enqueue(9u32).unwrap_err().into_inner(), 9);

    // And both succeed on unbounded queues.
    let q: Arc<RawQueue<SEG>> = Arc::new(RawQueue::new());
    let mut h = OwnedHandle::new(Arc::clone(&q));
    h.try_enqueue(5).unwrap();
    assert_eq!(h.dequeue(), Some(5));
}

#[test]
fn plain_enqueue_keeps_paper_semantics_past_the_ceiling() {
    // The paper's enqueue never fails: on a bounded queue it may overshoot
    // the ceiling (by the documented bounded amount) rather than reject.
    const CEILING: u64 = 2;
    let q: RawQueue<SEG> =
        RawQueue::with_config(Config::default().with_segment_ceiling(CEILING));
    let mut h = q.register();
    let total = SEG as u64 * 4; // twice the ceiling's capacity
    for v in 1..=total {
        h.enqueue(v); // must not block forever or panic
    }
    for v in 1..=total {
        assert_eq!(h.dequeue(), Some(v), "overshoot lost a value");
    }
}

#[test]
fn bounded_gauges_flow_through_the_metrics_exposition() {
    let q: RawQueue<SEG> =
        RawQueue::with_config(Config::default().with_segment_ceiling(8));
    let mut h = q.register();
    for v in 1..=(SEG as u64 * 2) {
        h.try_enqueue(v).unwrap();
    }
    let out = wfq_harness::render_prometheus(&q.stats(), Some(&q.gauges()));
    assert!(out.contains("wfq_segment_ceiling 8\n"), "{out}");
    assert!(out.contains("wfq_ceiling_headroom"), "{out}");
    assert!(out.contains("wfq_enq_rejected_total 0\n"), "{out}");
}

// ---------------------------------------------------------------------
// Bounded-mode parity for the fixed-capacity ring backends: a full SCQ
// or wCQ ring must answer `try_enqueue` with the same typed `Full` the
// segment-ceiling queue uses, reject without losing or corrupting any
// accepted value, and recover completely once the backlog drains.
// ---------------------------------------------------------------------

mod ring_parity {
    use wfq_baselines::{BenchQueue, QueueHandle, Scq, Wcq};
    use wfqueue::Full;

    const ORDER: u32 = 3; // ring capacity 2^3 = 8

    fn full_ring_parity<Q: BenchQueue>(q: Q, capacity: u64) {
        let mut h = q.register();
        for v in 1..=capacity {
            h.try_enqueue(v).expect("rejected below capacity");
        }
        // Full: typed rejection, repeatable, and the ring is untouched.
        assert_eq!(h.try_enqueue(capacity + 1), Err(Full(())));
        assert_eq!(h.try_enqueue(capacity + 2), Err(Full(())));

        // The default batch fallback stops at the first Full with the
        // accepted prefix enqueued (documented prefix-on-Full contract) —
        // on an already-full ring that prefix is empty.
        let batch: Vec<u64> = (100..100 + capacity).collect();
        assert_eq!(h.try_enqueue_batch(&batch), Err(Full(())));

        // Nothing lost, nothing invented, FIFO intact.
        for v in 1..=capacity {
            assert_eq!(h.dequeue(), Some(v), "{} corrupted under Full", Q::NAME);
        }
        assert_eq!(h.dequeue(), None, "{} leaked a rejected value", Q::NAME);

        // Full recovery: the whole capacity is available again.
        for v in 1..=capacity {
            h.try_enqueue(v + 50).expect("capacity not recovered");
        }
        assert_eq!(h.try_enqueue(999), Err(Full(())));
        for v in 1..=capacity {
            assert_eq!(h.dequeue(), Some(v + 50));
        }
        drop(h); // handle-local counters flush on drop
        assert!(q.stats().enq_rejected >= 4, "{:?}", q.stats());
    }

    #[test]
    fn scq_full_ring_matches_bounded_contract() {
        assert!(<Scq as BenchQueue>::FIXED_CAPACITY);
        let q = Scq::with_order(ORDER);
        full_ring_parity(q, 1 << ORDER);
    }

    #[test]
    fn wcq_full_ring_matches_bounded_contract() {
        assert!(<Wcq as BenchQueue>::FIXED_CAPACITY);
        // Patience 0: the rejection decision must hold on the slow path
        // too (the helping records never manufacture capacity).
        let q = Wcq::with_params(ORDER, 0);
        full_ring_parity(q, 1 << ORDER);
    }

    #[test]
    fn unbounded_backends_advertise_no_fixed_capacity() {
        assert!(!<wfqueue::RawQueue as BenchQueue>::FIXED_CAPACITY);
        assert!(!<wfq_baselines::Wf0 as BenchQueue>::FIXED_CAPACITY);
        assert!(!<wfq_baselines::MsQueue as BenchQueue>::FIXED_CAPACITY);
    }
}

/// The acceptance soak (ISSUE 3): with ceiling S and one thread
/// fault-injected to park *while holding a hazard on segment 0*, the
/// queue must degrade — live segments never exceed S, `try_enqueue`
/// returns `Full` — and must fully recover once the thread resumes.
#[cfg(feature = "fault-injection")]
mod stall_soak {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    use wfq_sync::fault::{self, FaultPlan};
    use wfqueue::{Config, RawQueue};

    use super::SEG;

    #[derive(Default)]
    struct Event(Mutex<bool>, Condvar);

    impl Event {
        fn set(&self) {
            *self.0.lock().unwrap() = true;
            self.1.notify_all();
        }
        fn wait(&self) {
            let mut g = self.0.lock().unwrap();
            while !*g {
                g = self.1.wait(g).unwrap();
            }
        }
    }

    #[test]
    fn stalled_hazard_degrades_to_bounded_rejection_and_recovers() {
        const CEILING: u64 = 8;
        let q = RawQueue::<SEG>::with_config(
            Config::default()
                .with_max_garbage(1)
                .with_segment_ceiling(CEILING),
        );
        let parked = Arc::new(Event::default());
        let release = Arc::new(Event::default());
        let accepted = Arc::new(AtomicU64::new(0));

        std::thread::scope(|s| {
            // The victim: parks between publishing its hazard (segment 0)
            // and using it — the exact window a crashed/descheduled thread
            // occupies from the reclaimer's point of view.
            {
                let q = &q;
                let (parked, release) = (Arc::clone(&parked), Arc::clone(&release));
                s.spawn(move || {
                    let mut h = q.register();
                    let p = Arc::clone(&parked);
                    let r = Arc::clone(&release);
                    fault::with_plan(
                        FaultPlan::new().hook_at(
                            "deq::hazard_published",
                            0,
                            Arc::new(move |_| {
                                p.set();
                                r.wait();
                            }),
                        ),
                        || {
                            let _ = h.dequeue();
                        },
                    );
                });
            }

            // The producer: once the victim is parked, push until the
            // ceiling bites. The parked hazard pins every reclamation
            // boundary at 0, so no forced pass can recover headroom and
            // Full is the only lawful outcome.
            {
                let q = &q;
                let parked = Arc::clone(&parked);
                let release = Arc::clone(&release);
                let accepted = Arc::clone(&accepted);
                s.spawn(move || {
                    parked.wait();
                    let mut h = q.register();
                    let cap = CEILING * SEG as u64 * 2;
                    let mut v = 0u64;
                    let saw_full = loop {
                        if v >= cap {
                            break false;
                        }
                        v += 1;
                        match h.try_enqueue(v) {
                            Ok(()) => {
                                accepted.fetch_add(1, Ordering::Relaxed);
                                // Degradation invariant, sampled on every
                                // accepted enqueue: never above the ceiling.
                                let g = q.gauges();
                                assert!(
                                    g.live_segments <= CEILING,
                                    "ceiling breached mid-fill: {g:?}"
                                );
                            }
                            Err(_) => break true,
                        }
                    };
                    assert!(saw_full, "parked hazard never produced Full");

                    // Steady-state degradation: rejections repeat, memory
                    // stays put, and the gauges name the culprit.
                    for _ in 0..32 {
                        assert!(q.register().try_enqueue(12345).is_err());
                    }
                    let g = q.gauges();
                    assert!(g.live_segments <= CEILING, "{g:?}");
                    assert_eq!(
                        g.min_hazard,
                        Some(0),
                        "watchdog gauge must expose the pinning hazard: {g:?}"
                    );
                    assert_eq!(g.ceiling_headroom, Some(0), "{g:?}");
                    let st = q.stats();
                    assert!(st.enq_rejected >= 32, "{st:?}");
                    assert!(st.forced_cleanups > 0, "{st:?}");
                    assert_eq!(st.segs_recycled, 0, "freed past a live hazard: {st:?}");

                    release.set();
                });
            }
        });

        // The victim resumed and completed its dequeue. Recovery: drain
        // the backlog, then a full ceiling's worth of capacity minus one
        // segment must be acceptable again ((S − 2) × N: the tail restarts
        // mid-segment and the admission gate is conservative by one
        // segment). The degradation left no permanent damage.
        let n = accepted.load(Ordering::Relaxed);
        assert!(n >= (CEILING - 1) * SEG as u64, "accepted only {n}");
        let mut h = q.register();
        let mut drained = 0;
        while h.dequeue().is_some() {
            drained += 1;
        }
        assert_eq!(drained, n - 1, "victim consumed one value on resume");
        for v in 1..=(CEILING - 2) * SEG as u64 {
            h.try_enqueue(v)
                .expect("queue did not recover its capacity floor after resume");
        }
        let st = q.stats();
        assert!(
            st.segs_recycled > 0,
            "recovery must recycle the previously pinned prefix: {st:?}"
        );
    }
}
