//! Differential shadow testing: every backend against a `VecDeque` oracle.
//!
//! The backends differ wildly inside — FAA segments, helping records,
//! indirect rings — but through [`QueueBackend`] they all claim to be the
//! same object: a FIFO queue of `u64`s. These tests hold them to it:
//!
//! - a **sequential tape** (deterministic op sequence from a seed) must
//!   produce *bit-identical* dequeue traces on every backend and on the
//!   oracle — sequential FIFO leaves no legal variation;
//! - a **full-ring edge tape** drives the bounded rings through repeated
//!   fill → reject → drain → empty-probe → refill cycles, checking
//!   `try_enqueue` backpressure and the SCQ threshold reset (a ring
//!   certified empty must come back to life on the next enqueue) against
//!   a capacity-bounded oracle;
//! - a **concurrent tape** runs the same producer/consumer workload on
//!   each backend, certifies every recorded history with the
//!   linearizability checker, and asserts the delivered multiset —
//!   consumed values plus a closing drain — is identical across backends
//!   (and equal to what was enqueued: nothing lost, duplicated, or
//!   invented);
//! - with `--features fault-injection`, the sequential differential runs
//!   again under seeded fault plans: injected scheduling perturbation must
//!   never change single-threaded semantics.

use std::collections::VecDeque;

use wfq_baselines::{
    BenchQueue, CcQueue, KpQueue, Lcrq, MsQueue, MutexQueue, QueueHandle, Scq, Wcq, Wf0,
};
use wfq_checker::{check_linearizable, check_necessary, CheckResult, OpKind, Recorder};
use wfqueue::RawQueue;

/// One step of a deterministic op tape.
#[derive(Clone, Copy, Debug)]
enum Op {
    Enq(u64),
    Deq,
}

/// Generates a seeded tape of `len` operations whose resident count never
/// exceeds `max_resident` (so fixed-capacity rings never reject on it) and
/// regularly dips to zero (so empty probes and the rings' certified-empty
/// paths are exercised). Values are unique and nonzero.
fn tape(seed: u64, len: usize, max_resident: usize) -> Vec<Op> {
    let mut rng = wfq_sync::XorShift64::for_stream(seed, 0);
    let mut ops = Vec::with_capacity(len);
    let mut resident = 0usize;
    let mut next = 1u64;
    for _ in 0..len {
        let enq = resident == 0 || (rng.coin() && resident < max_resident);
        if enq {
            ops.push(Op::Enq(next));
            next += 1;
            resident += 1;
        } else {
            ops.push(Op::Deq);
            resident -= 1; // never underflows: Deq only when resident > 0
        }
    }
    // Close with empty probes past exhaustion: `None` answers must agree.
    for _ in 0..4 {
        ops.push(Op::Deq);
    }
    ops
}

/// Replays `ops` single-threadedly on `q`, returning the dequeue trace.
fn replay<Q: BenchQueue>(q: &Q, ops: &[Op]) -> Vec<Option<u64>> {
    let mut h = q.register();
    let mut out = Vec::new();
    for op in ops {
        match *op {
            Op::Enq(v) => h.enqueue(v),
            Op::Deq => out.push(h.dequeue()),
        }
    }
    out
}

/// The oracle: the same tape on a `VecDeque`.
fn oracle(ops: &[Op]) -> Vec<Option<u64>> {
    let mut q = VecDeque::new();
    let mut out = Vec::new();
    for op in ops {
        match *op {
            Op::Enq(v) => q.push_back(v),
            Op::Deq => out.push(q.pop_front()),
        }
    }
    out
}

/// Sequential differential across every backend in the repository. The
/// resident bound (16) stays within the smallest ring driven here
/// (order 5 → capacity 32), so the same tape is legal everywhere.
#[test]
fn sequential_tape_matches_oracle_on_every_backend() {
    fn shadow<Q: BenchQueue>(q: Q, ops: &[Op], expect: &[Option<u64>], seed: u64) {
        assert_eq!(
            replay(&q, ops),
            expect,
            "{}: sequential trace diverged from the oracle (seed {seed})",
            Q::NAME
        );
    }
    for seed in 0..8 {
        let ops = tape(seed, 400, 16);
        let expect = oracle(&ops);
        shadow(RawQueue::<64>::new(), &ops, &expect, seed);
        shadow(Wf0::new(), &ops, &expect, seed);
        shadow(MsQueue::new(), &ops, &expect, seed);
        shadow(Lcrq::new(), &ops, &expect, seed);
        shadow(CcQueue::new(), &ops, &expect, seed);
        shadow(KpQueue::new(), &ops, &expect, seed);
        shadow(MutexQueue::new(), &ops, &expect, seed);
        shadow(Scq::with_order(5), &ops, &expect, seed);
        shadow(Wcq::with_params(5, 2), &ops, &expect, seed);
        shadow(Wcq::with_params(5, 0), &ops, &expect, seed); // slow path only
    }
}

// ---------------------------------------------------------------------
// Full-ring edge tape: backpressure + threshold reset.
// ---------------------------------------------------------------------

/// Drives a fixed-capacity ring through `cycles` fill/drain rounds and
/// returns the full observable trace: each try_enqueue's acceptance and
/// each dequeue's answer, in op order.
fn ring_edge_trace<Q: BenchQueue>(q: &Q, capacity: usize, cycles: usize) -> Vec<i64> {
    assert!(Q::FIXED_CAPACITY, "{} is not a bounded ring", Q::NAME);
    let mut h = q.register();
    let mut trace = Vec::new();
    let mut v = 1u64;
    for _ in 0..cycles {
        // Overfill: `capacity` accepts then 3 rejections.
        for _ in 0..capacity + 3 {
            trace.push(h.try_enqueue(v).is_ok() as i64);
            v += 1;
        }
        // Drain to empty, then 3 certified-empty probes.
        for _ in 0..capacity + 3 {
            trace.push(h.dequeue().map_or(-1, |x| x as i64));
        }
    }
    trace
}

/// The same protocol on a capacity-bounded `VecDeque`.
fn ring_edge_oracle(capacity: usize, cycles: usize) -> Vec<i64> {
    let mut q = VecDeque::new();
    let mut trace = Vec::new();
    let mut v = 1u64;
    for _ in 0..cycles {
        for _ in 0..capacity + 3 {
            if q.len() < capacity {
                q.push_back(v);
                trace.push(1);
            } else {
                trace.push(0);
            }
            v += 1;
        }
        for _ in 0..capacity + 3 {
            trace.push(q.pop_front().map_or(-1, |x| x as i64));
        }
    }
    trace
}

/// Three full cycles: the second and third refills only work if the ring
/// recovers from its certified-empty state (SCQ's threshold reset) and
/// from a fully-rejected tail (no ghost occupancy after `Full`).
#[test]
fn full_ring_edge_tape_matches_bounded_oracle() {
    let expect = ring_edge_oracle(8, 3);
    let scq = Scq::with_order(3); // capacity 8
    assert_eq!(
        ring_edge_trace(&scq, 8, 3),
        expect,
        "SCQ diverged from the bounded oracle"
    );
    let wcq = Wcq::with_params(3, 2);
    assert_eq!(
        ring_edge_trace(&wcq, 8, 3),
        expect,
        "wCQ diverged from the bounded oracle"
    );
    let wcq0 = Wcq::with_params(3, 0); // slow-path-only flavour
    assert_eq!(
        ring_edge_trace(&wcq0, 8, 3),
        expect,
        "patience-0 wCQ diverged from the bounded oracle"
    );
}

// ---------------------------------------------------------------------
// Concurrent differential: certify each backend, compare deliveries.
// ---------------------------------------------------------------------

/// Runs `producers`×`per` values against draining consumers on `q`,
/// certifies the recorded history, and returns the sorted multiset of
/// every value that came out (concurrent deliveries plus a closing
/// drain). Panics (with the seed) if the checker convicts the backend.
fn concurrent_delivery<Q: BenchQueue>(q: &Q, seed: u64, producers: u64, per: u64) -> Vec<u64> {
    use std::sync::atomic::{AtomicU64, Ordering};
    let rec = Recorder::new();
    let target = producers * per;
    let delivered = AtomicU64::new(0);
    let consumers = 2u64;
    let mut out: Vec<u64> = Vec::new();
    std::thread::scope(|s| {
        for t in 0..producers {
            let q = &q;
            let mut tr = rec.thread();
            s.spawn(move || {
                let mut h = q.register();
                let mut rng = wfq_sync::XorShift64::for_stream(seed, t);
                for k in 0..per {
                    let v = t * per + k + 1;
                    let inv = tr.invoke();
                    h.enqueue(v);
                    tr.record(OpKind::Enqueue(v), inv);
                    if rng.coin() {
                        std::thread::yield_now();
                    }
                }
            });
        }
        let collected: Vec<_> = (0..consumers)
            .map(|_| {
                let q = &q;
                let delivered = &delivered;
                let mut tr = rec.thread();
                s.spawn(move || {
                    let mut h = q.register();
                    let mut got = Vec::new();
                    // Bound recorded empty probes; dropping a None from a
                    // history only removes a constraint.
                    let mut none_budget = 32u64;
                    while delivered.load(Ordering::Relaxed) < target {
                        let inv = tr.invoke();
                        match h.dequeue() {
                            Some(v) => {
                                tr.record(OpKind::Dequeue(Some(v)), inv);
                                got.push(v);
                                delivered.fetch_add(1, Ordering::Relaxed);
                            }
                            None => {
                                if none_budget > 0 {
                                    none_budget -= 1;
                                    tr.record(OpKind::Dequeue(None), inv);
                                }
                                std::thread::yield_now();
                            }
                        }
                    }
                    got
                })
            })
            .collect();
        for j in collected {
            out.extend(j.join().expect("consumer panicked"));
        }
    });
    // Closing drain: anything still resident must come out here (and for
    // this workload the consumers drain everything, so it must be empty —
    // but the differential only asserts the multiset, not residency).
    let mut h = q.register();
    while let Some(v) = h.dequeue() {
        out.push(v);
    }
    let hist = rec.finish();
    assert_eq!(
        check_necessary(&hist),
        Ok(()),
        "{}: necessary conditions failed (seed {seed})",
        Q::NAME
    );
    if let CheckResult::NotLinearizable = check_linearizable(&hist, 4_000_000) {
        panic!("{}: concurrent history not linearizable (seed {seed})", Q::NAME);
    }
    out.sort_unstable();
    out
}

/// The shadow contract under concurrency: whatever interleaving each
/// backend chooses, the *multiset* of delivered values is fully
/// determined — and therefore identical across WF, SCQ, wCQ and the
/// oracle's expectation.
#[test]
fn concurrent_deliveries_are_identical_across_backends() {
    for seed in 0..4 {
        let (producers, per) = (2, 16);
        let expect: Vec<u64> = (1..=producers * per).collect();
        let wf = concurrent_delivery(&RawQueue::<64>::new(), seed, producers, per);
        assert_eq!(wf, expect, "WF lost or invented values (seed {seed})");
        let scq = concurrent_delivery(&Scq::with_order(5), seed, producers, per);
        assert_eq!(scq, expect, "SCQ lost or invented values (seed {seed})");
        let wcq = concurrent_delivery(&Wcq::with_params(5, 1), seed, producers, per);
        assert_eq!(wcq, expect, "wCQ lost or invented values (seed {seed})");
        // The cross-backend assert is then exact equality of deliveries.
        assert!(
            wf == scq && scq == wcq,
            "backends disagree on the delivered multiset (seed {seed})"
        );
    }
}

// ---------------------------------------------------------------------
// Fault-layer variant: perturbation must not change sequential meaning.
// ---------------------------------------------------------------------

/// The sequential differential again, under seeded fault plans: the
/// injection layer may delay and reorder *scheduling*, never values. A
/// divergence here means an injection point has a side effect.
#[cfg(feature = "fault-injection")]
#[test]
fn sequential_tape_matches_oracle_under_fault_plans() {
    use wfq_sync::fault::{self, FaultPlan};
    for seed in 0..6 {
        let ops = tape(seed, 200, 12);
        let expect = oracle(&ops);
        fault::with_plan(FaultPlan::fuzz(seed, 80), || {
            let q = Scq::with_order(5);
            assert_eq!(
                replay(&q, &ops),
                expect,
                "SCQ semantics changed under fault plan (seed {seed})"
            );
        });
        fault::with_plan(FaultPlan::fuzz(seed.wrapping_add(101), 80), || {
            let q = Wcq::with_params(5, 0);
            assert_eq!(
                replay(&q, &ops),
                expect,
                "patience-0 wCQ semantics changed under fault plan (seed {seed})"
            );
        });
        fault::with_plan(FaultPlan::fuzz(seed.wrapping_add(202), 80), || {
            let q = RawQueue::<16>::new();
            assert_eq!(
                replay(&q, &ops),
                expect,
                "WF semantics changed under fault plan (seed {seed})"
            );
        });
    }
}
