//! Large-scale MPMC stress: value conservation, per-producer FIFO order,
//! and emptiness sanity for every queue, at thread counts that
//! oversubscribe this host (the regime of the paper's Table 2).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use wfq_baselines::{BenchQueue, CcQueue, KpQueue, Lcrq, MsQueue, MutexQueue, QueueHandle, Wf0};
use wfqueue::RawQueue;

const PRODUCERS: usize = 3;
const CONSUMERS: usize = 3;
const PER_PRODUCER: u64 = 20_000;

/// Tag layout: producer id in the top bits, 1-based sequence below.
fn tag(p: usize) -> u64 {
    ((p as u64 + 1) << 40) | 1
}

fn stress<Q: BenchQueue>() {
    let q = Q::new();
    let total = (PRODUCERS as u64) * PER_PRODUCER;
    let consumed = AtomicU64::new(0);
    // Each consumer logs (value) in its own arrival order.
    let logs: Mutex<Vec<Vec<u64>>> = Mutex::new(Vec::new());

    std::thread::scope(|s| {
        for p in 0..PRODUCERS {
            let q = &q;
            s.spawn(move || {
                let mut h = q.register();
                for i in 0..PER_PRODUCER {
                    h.enqueue(tag(p) + i);
                }
            });
        }
        for _ in 0..CONSUMERS {
            let q = &q;
            let consumed = &consumed;
            let logs = &logs;
            s.spawn(move || {
                let mut h = q.register();
                let mut mine = Vec::new();
                loop {
                    if consumed.load(Ordering::Relaxed) >= total {
                        break;
                    }
                    if let Some(v) = h.dequeue() {
                        mine.push(v);
                        consumed.fetch_add(1, Ordering::Relaxed);
                    }
                }
                logs.lock().unwrap().push(mine);
            });
        }
    });

    let logs = logs.into_inner().unwrap();
    let all: Vec<u64> = logs.iter().flatten().copied().collect();

    // Conservation: every value exactly once.
    assert_eq!(all.len() as u64, total, "{}: op count", Q::NAME);
    let mut counts: HashMap<u64, u32> = HashMap::new();
    for &v in &all {
        *counts.entry(v).or_default() += 1;
    }
    assert_eq!(counts.len() as u64, total, "{}: duplicates", Q::NAME);
    for p in 0..PRODUCERS {
        for i in 0..PER_PRODUCER {
            assert!(
                counts.contains_key(&(tag(p) + i)),
                "{}: lost value p{p}#{i}",
                Q::NAME
            );
        }
    }

    // Per-producer FIFO within each consumer's stream: a single consumer
    // must observe any one producer's values in increasing sequence order
    // (each dequeue of that producer's later value happens after the
    // dequeue of its earlier value completed on the same thread).
    for (ci, log) in logs.iter().enumerate() {
        let mut last: HashMap<u64, u64> = HashMap::new();
        for &v in log {
            let producer = v >> 40;
            let seq = v & ((1 << 40) - 1);
            if let Some(&prev) = last.get(&producer) {
                assert!(
                    seq > prev,
                    "{}: consumer {ci} saw producer {producer} out of order ({prev} then {seq})",
                    Q::NAME
                );
            }
            last.insert(producer, seq);
        }
    }
}

#[test]
fn stress_wf10() {
    stress::<RawQueue>();
}

#[test]
fn stress_wf0() {
    stress::<Wf0>();
}

#[test]
fn stress_msqueue() {
    stress::<MsQueue>();
}

#[test]
fn stress_lcrq() {
    stress::<Lcrq>();
}

#[test]
fn stress_ccqueue() {
    stress::<CcQueue>();
}

#[test]
fn stress_mutex() {
    stress::<MutexQueue>();
}

#[test]
fn stress_kpqueue() {
    stress::<KpQueue>();
}

/// Handle-lifecycle churn under traffic: one thread registers and drops
/// handles (doing a few operations through each) while steady producers
/// and consumers run. Guards the `active_count` accounting that the
/// reclamation threshold and the bounded-mode pool both depend on — a
/// count that drifts under churn either disables reclamation (threshold
/// inflates) or corrupts the node free list.
#[test]
fn handle_churn_under_traffic_conserves_values_and_count() {
    let q = wfqueue::RawQueue::<64>::with_config(
        wfqueue::Config::default()
            .with_max_garbage(2)
            .with_segment_ceiling(512),
    );
    let per = 10_000u64;
    let producers = 2u64;
    let total = producers * per;
    let sum = AtomicU64::new(0);
    let got = AtomicU64::new(0);
    let done = AtomicU64::new(0);
    std::thread::scope(|s| {
        for t in 0..producers {
            let q = &q;
            s.spawn(move || {
                let mut h = q.register();
                for i in 0..per {
                    h.enqueue(t * per + i + 1);
                }
            });
        }
        for _ in 0..2 {
            let q = &q;
            let (sum, got) = (&sum, &got);
            s.spawn(move || {
                let mut h = q.register();
                while got.load(Ordering::Relaxed) < total {
                    if let Some(v) = h.dequeue() {
                        sum.fetch_add(v, Ordering::Relaxed);
                        got.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
        // The churner: short-lived handles that only dequeue-probe, so the
        // conservation ledger stays defined by the two steady producers.
        {
            let q = &q;
            let (sum, got, done) = (&sum, &got, &done);
            s.spawn(move || {
                while got.load(Ordering::Relaxed) < total {
                    let mut h = q.register();
                    for _ in 0..16 {
                        if let Some(v) = h.dequeue() {
                            sum.fetch_add(v, Ordering::Relaxed);
                            got.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    drop(h);
                    done.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });
    assert_eq!(sum.load(Ordering::Relaxed), (1..=total).sum::<u64>());
    assert!(done.load(Ordering::Relaxed) > 0, "churner never cycled");
    let g = q.gauges();
    assert_eq!(
        g.active_handles, 0,
        "active-handle count drifted under churn: {g:?}"
    );
    // Reclamation must still have run despite the churn (the threshold is
    // computed from *live* handles, so dead registrations cannot stall it).
    let st = q.stats();
    assert!(st.segs_freed > 0, "churn stalled reclamation: {st:?}");
}

/// The paper's Table 2 regime: more threads than hardware threads. The
/// wait-free queue must stay correct when every thread is constantly
/// preempted mid-operation.
#[test]
fn oversubscribed_wf0_conserves_values() {
    let q = wfqueue::RawQueue::<64>::with_config(wfqueue::Config::wf0());
    let threads = 8; // far beyond this host's hardware threads
    let per = 4_000u64;
    let sum = AtomicU64::new(0);
    let got = AtomicU64::new(0);
    let total = threads as u64 / 2 * per;
    std::thread::scope(|s| {
        for t in 0..threads / 2 {
            let q = &q;
            s.spawn(move || {
                let mut h = q.register();
                for i in 0..per {
                    h.enqueue((t as u64) * per + i + 1);
                }
            });
        }
        for _ in 0..threads / 2 {
            let q = &q;
            let sum = &sum;
            let got = &got;
            s.spawn(move || {
                let mut h = q.register();
                loop {
                    if got.load(Ordering::Relaxed) >= total {
                        break;
                    }
                    if let Some(v) = h.dequeue() {
                        sum.fetch_add(v, Ordering::Relaxed);
                        got.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    assert_eq!(sum.load(Ordering::Relaxed), (1..=total).sum::<u64>());
    // Slow-path traffic is scheduling-dependent (a fast path fails only
    // when it loses a race); report coverage rather than asserting it —
    // wf_paths.rs asserts slow-path coverage with a retry loop.
    let st = q.stats();
    eprintln!("oversubscribed WF-0 slow-path coverage: {st:?}");
}
