//! Property-based tests: every queue in the repository is sequentially
//! equivalent to `VecDeque` under arbitrary operation sequences, and the
//! checker infrastructure itself satisfies its contracts.

use std::collections::VecDeque;

use proptest::prelude::*;
use wfq_baselines::{BenchQueue, CcQueue, KpQueue, Lcrq, MsQueue, MutexQueue, QueueHandle, Wf0};
use wfq_checker::{check_linearizable, check_necessary, History, OpKind};
use wfqueue::{Config, RawQueue, WfQueue};

/// An abstract operation for the model test.
#[derive(Debug, Clone, Copy)]
enum Op {
    Enq(u64),
    Deq,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (1u64..1_000_000).prop_map(Op::Enq),
        Just(Op::Deq),
    ]
}

/// Applies `ops` to both the queue under test and a VecDeque model; every
/// dequeue must agree.
fn check_sequential<Q: BenchQueue>(ops: &[Op]) {
    let q = Q::new();
    let mut h = q.register();
    let mut model: VecDeque<u64> = VecDeque::new();
    for (step, op) in ops.iter().enumerate() {
        match *op {
            Op::Enq(v) => {
                h.enqueue(v);
                model.push_back(v);
            }
            Op::Deq => {
                let got = h.dequeue();
                let want = model.pop_front();
                assert_eq!(got, want, "{} diverged at step {step}", Q::NAME);
            }
        }
    }
    // Drain: the tail of the model must come out in order.
    while let Some(want) = model.pop_front() {
        assert_eq!(h.dequeue(), Some(want), "{} diverged in drain", Q::NAME);
    }
    assert_eq!(h.dequeue(), None);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn wf10_matches_vecdeque(ops in proptest::collection::vec(op_strategy(), 1..400)) {
        check_sequential::<RawQueue>(&ops);
    }

    #[test]
    fn wf0_matches_vecdeque(ops in proptest::collection::vec(op_strategy(), 1..400)) {
        check_sequential::<Wf0>(&ops);
    }

    #[test]
    fn msqueue_matches_vecdeque(ops in proptest::collection::vec(op_strategy(), 1..400)) {
        check_sequential::<MsQueue>(&ops);
    }

    #[test]
    fn lcrq_matches_vecdeque(ops in proptest::collection::vec(op_strategy(), 1..400)) {
        check_sequential::<Lcrq>(&ops);
    }

    #[test]
    fn ccqueue_matches_vecdeque(ops in proptest::collection::vec(op_strategy(), 1..400)) {
        check_sequential::<CcQueue>(&ops);
    }

    #[test]
    fn mutex_matches_vecdeque(ops in proptest::collection::vec(op_strategy(), 1..400)) {
        check_sequential::<MutexQueue>(&ops);
    }

    #[test]
    fn kpqueue_matches_vecdeque(ops in proptest::collection::vec(op_strategy(), 1..200)) {
        check_sequential::<KpQueue>(&ops);
    }

    /// Tiny segments force constant list extension and reclamation while
    /// remaining sequentially correct.
    #[test]
    fn wf_with_tiny_segments_matches_vecdeque(
        ops in proptest::collection::vec(op_strategy(), 1..400),
    ) {
        let q: RawQueue<8> = RawQueue::with_config(
            Config::default().with_max_garbage(1),
        );
        let mut h = q.register();
        let mut model: VecDeque<u64> = VecDeque::new();
        for op in &ops {
            match *op {
                Op::Enq(v) => { h.enqueue(v); model.push_back(v); }
                Op::Deq => {
                    prop_assert_eq!(h.dequeue(), model.pop_front());
                }
            }
        }
    }

    /// Typed queue: arbitrary values (including the raw sentinels) survive
    /// boxing round-trips.
    #[test]
    fn typed_queue_roundtrips_any_u64(vals in proptest::collection::vec(any::<u64>(), 1..200)) {
        let q: WfQueue<u64> = WfQueue::new();
        let mut h = q.handle();
        for &v in &vals { h.enqueue(v); }
        for &v in &vals {
            prop_assert_eq!(h.dequeue(), Some(v));
        }
        prop_assert_eq!(h.dequeue(), None);
    }

    /// Any *valid* sequential FIFO history passes both checkers.
    #[test]
    fn checkers_accept_valid_sequential_histories(
        ops in proptest::collection::vec(op_strategy(), 1..40),
    ) {
        let mut model: VecDeque<u64> = VecDeque::new();
        let mut kinds = Vec::new();
        let mut next = 1u64;
        for op in &ops {
            match op {
                Op::Enq(_) => {
                    // Force unique values (checker precondition).
                    kinds.push(OpKind::Enqueue(next));
                    model.push_back(next);
                    next += 1;
                }
                Op::Deq => {
                    kinds.push(OpKind::Dequeue(model.pop_front()));
                }
            }
        }
        let h = History::sequential(&kinds);
        prop_assert_eq!(check_necessary(&h), Ok(()));
        prop_assert!(check_linearizable(&h, 1_000_000).is_ok() || h.len() > 128);
    }

    /// Corrupting one dequeue's result in a valid history must be caught
    /// by the exhaustive checker (completeness against mutations).
    #[test]
    fn checker_rejects_mutated_histories(
        n_values in 2usize..10,
        swap in any::<bool>(),
    ) {
        // Build enq(1..n) then deq all; mutate by swapping two dequeue
        // results or dropping one value for a never-enqueued one.
        let mut kinds: Vec<OpKind> = (1..=n_values as u64).map(OpKind::Enqueue).collect();
        let mut dq: Vec<u64> = (1..=n_values as u64).collect();
        if swap {
            dq.swap(0, n_values - 1); // out of FIFO order
        } else {
            dq[0] = 777_777; // value from nowhere
        }
        kinds.extend(dq.into_iter().map(|v| OpKind::Dequeue(Some(v))));
        let h = History::sequential(&kinds);
        prop_assert!(!check_linearizable(&h, 1_000_000).is_ok());
        prop_assert!(check_necessary(&h).is_err());
    }
}

/// Non-proptest regression: interleaved enqueue/dequeue around emptiness.
#[test]
fn emptiness_edge_sequence() {
    for patience in [0, 1, 10] {
        let q: RawQueue<64> =
            RawQueue::with_config(Config::default().with_patience(patience));
        let mut h = q.register();
        for round in 0..50u64 {
            assert_eq!(h.dequeue(), None, "patience {patience}");
            h.enqueue(round + 1);
            h.enqueue(round + 1000);
            assert_eq!(h.dequeue(), Some(round + 1));
            assert_eq!(h.dequeue(), Some(round + 1000));
            assert_eq!(h.dequeue(), None);
        }
    }
}
