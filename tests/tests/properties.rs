//! Property-style tests: every queue in the repository is sequentially
//! equivalent to `VecDeque` under randomized operation sequences, and the
//! checker infrastructure itself satisfies its contracts.
//!
//! Randomness is a seeded sweep over [`wfq_sync::XorShift64`] (no external
//! property-testing dependency): each case derives its op sequence from a
//! fixed base seed, so failures are reproducible by construction — the
//! assertion message names the seed.

use std::collections::VecDeque;

use wfq_baselines::{BenchQueue, CcQueue, KpQueue, Lcrq, MsQueue, MutexQueue, QueueHandle, Wf0};
use wfq_checker::{check_linearizable, check_necessary, History, OpKind};
use wfq_sync::XorShift64;
use wfqueue::{Config, RawQueue, WfQueue};

/// An abstract operation for the model test.
#[derive(Debug, Clone, Copy)]
enum Op {
    Enq(u64),
    Deq,
}

/// Cases per sweep (matches the former proptest `cases = 64`).
const CASES: u64 = 64;

/// Generates a random op sequence of length in `1..max_len` for `seed`.
fn gen_ops(seed: u64, max_len: u64) -> Vec<Op> {
    let mut rng = XorShift64::for_stream(0x5EED_BA5E, seed);
    let len = rng.next_in(1, max_len - 1);
    (0..len)
        .map(|_| {
            if rng.coin() {
                Op::Enq(rng.next_in(1, 1_000_000))
            } else {
                Op::Deq
            }
        })
        .collect()
}

/// Applies `ops` to both the queue under test and a VecDeque model; every
/// dequeue must agree.
fn check_sequential<Q: BenchQueue>(ops: &[Op], seed: u64) {
    let q = Q::new();
    let mut h = q.register();
    let mut model: VecDeque<u64> = VecDeque::new();
    for (step, op) in ops.iter().enumerate() {
        match *op {
            Op::Enq(v) => {
                h.enqueue(v);
                model.push_back(v);
            }
            Op::Deq => {
                let got = h.dequeue();
                let want = model.pop_front();
                assert_eq!(got, want, "{} diverged at step {step} (seed {seed})", Q::NAME);
            }
        }
    }
    // Drain: the tail of the model must come out in order.
    while let Some(want) = model.pop_front() {
        assert_eq!(
            h.dequeue(),
            Some(want),
            "{} diverged in drain (seed {seed})",
            Q::NAME
        );
    }
    assert_eq!(h.dequeue(), None);
}

fn sweep<Q: BenchQueue>(max_len: u64) {
    for seed in 0..CASES {
        check_sequential::<Q>(&gen_ops(seed, max_len), seed);
    }
}

#[test]
fn wf10_matches_vecdeque() {
    sweep::<RawQueue>(400);
}

#[test]
fn wf0_matches_vecdeque() {
    sweep::<Wf0>(400);
}

#[test]
fn msqueue_matches_vecdeque() {
    sweep::<MsQueue>(400);
}

#[test]
fn lcrq_matches_vecdeque() {
    sweep::<Lcrq>(400);
}

#[test]
fn ccqueue_matches_vecdeque() {
    sweep::<CcQueue>(400);
}

#[test]
fn mutex_matches_vecdeque() {
    sweep::<MutexQueue>(400);
}

#[test]
fn kpqueue_matches_vecdeque() {
    sweep::<KpQueue>(200);
}

/// Tiny segments force constant list extension and reclamation while
/// remaining sequentially correct.
#[test]
fn wf_with_tiny_segments_matches_vecdeque() {
    for seed in 0..CASES {
        let ops = gen_ops(seed, 400);
        let q: RawQueue<8> = RawQueue::with_config(Config::default().with_max_garbage(1));
        let mut h = q.register();
        let mut model: VecDeque<u64> = VecDeque::new();
        for op in &ops {
            match *op {
                Op::Enq(v) => {
                    h.enqueue(v);
                    model.push_back(v);
                }
                Op::Deq => {
                    assert_eq!(h.dequeue(), model.pop_front(), "seed {seed}");
                }
            }
        }
    }
}

/// Typed queue: arbitrary values (including the raw sentinels) survive
/// boxing round-trips.
#[test]
fn typed_queue_roundtrips_any_u64() {
    for seed in 0..CASES {
        let mut rng = XorShift64::for_stream(0x7F00D, seed);
        let len = rng.next_in(1, 199);
        // Bias some draws to the raw sentinel patterns the typed layer
        // must shield (0 and u64::MAX are invalid in RawQueue).
        let vals: Vec<u64> = (0..len)
            .map(|_| match rng.next_below(8) {
                0 => 0,
                1 => u64::MAX,
                _ => rng.next_u64(),
            })
            .collect();
        let q: WfQueue<u64> = WfQueue::new();
        let mut h = q.handle();
        for &v in &vals {
            h.enqueue(v);
        }
        for &v in &vals {
            assert_eq!(h.dequeue(), Some(v), "seed {seed}");
        }
        assert_eq!(h.dequeue(), None, "seed {seed}");
    }
}

/// Any *valid* sequential FIFO history passes both checkers.
#[test]
fn checkers_accept_valid_sequential_histories() {
    for seed in 0..CASES {
        let ops = gen_ops(seed, 40);
        let mut model: VecDeque<u64> = VecDeque::new();
        let mut kinds = Vec::new();
        let mut next = 1u64;
        for op in &ops {
            match op {
                Op::Enq(_) => {
                    // Force unique values (checker precondition).
                    kinds.push(OpKind::Enqueue(next));
                    model.push_back(next);
                    next += 1;
                }
                Op::Deq => {
                    kinds.push(OpKind::Dequeue(model.pop_front()));
                }
            }
        }
        let h = History::sequential(&kinds);
        assert_eq!(check_necessary(&h), Ok(()), "seed {seed}");
        assert!(
            check_linearizable(&h, 1_000_000).is_ok() || h.len() > 128,
            "seed {seed}"
        );
    }
}

/// Corrupting one dequeue's result in a valid history must be caught
/// by the exhaustive checker (completeness against mutations).
#[test]
fn checker_rejects_mutated_histories() {
    for seed in 0..CASES {
        let mut rng = XorShift64::for_stream(0xBAD, seed);
        let n_values = rng.next_in(2, 9) as usize;
        let swap = rng.coin();
        // Build enq(1..n) then deq all; mutate by swapping two dequeue
        // results or dropping one value for a never-enqueued one.
        let mut kinds: Vec<OpKind> = (1..=n_values as u64).map(OpKind::Enqueue).collect();
        let mut dq: Vec<u64> = (1..=n_values as u64).collect();
        if swap {
            dq.swap(0, n_values - 1); // out of FIFO order
        } else {
            dq[0] = 777_777; // value from nowhere
        }
        kinds.extend(dq.into_iter().map(|v| OpKind::Dequeue(Some(v))));
        let h = History::sequential(&kinds);
        assert!(!check_linearizable(&h, 1_000_000).is_ok(), "seed {seed}");
        assert!(check_necessary(&h).is_err(), "seed {seed}");
    }
}

/// Non-proptest regression: interleaved enqueue/dequeue around emptiness.
#[test]
fn emptiness_edge_sequence() {
    for patience in [0, 1, 10] {
        let q: RawQueue<64> =
            RawQueue::with_config(Config::default().with_patience(patience));
        let mut h = q.register();
        for round in 0..50u64 {
            assert_eq!(h.dequeue(), None, "patience {patience}");
            h.enqueue(round + 1);
            h.enqueue(round + 1000);
            assert_eq!(h.dequeue(), Some(round + 1));
            assert_eq!(h.dequeue(), Some(round + 1000));
            assert_eq!(h.dequeue(), None);
        }
    }
}
