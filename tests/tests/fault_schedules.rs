//! Schedule fuzzing and targeted fault-injection tests.
//!
//! The interesting code in this repository — the Kogan–Petrank helping
//! slow paths and the reclaimer's re-verification windows — only runs when
//! a race is *lost*, which an unperturbed test almost never arranges. These
//! tests drive those windows deliberately:
//!
//! - a seeded **schedule fuzzer** replays small workloads under many
//!   deterministic [`FaultPlan`]s, certifies every recorded history with
//!   the linearizability checker, and asserts the sweep reached every
//!   named injection point (`wfqueue::FAULT_POINTS`);
//! - a **negative control** proves the certification step has teeth by
//!   feeding it a deliberately broken (LIFO) "queue";
//! - a **targeted regression** parks a dequeuer inside the hazard window
//!   of Listing 5 and proves the cleaner refuses to reclaim past it.
//!
//! Everything here is deterministic given a seed. On failure the seed is
//! part of the panic message; rerun just that schedule with
//! `WFQ_FUZZ_SEED=<seed> cargo test -p wfq-integration --features
//! fault-injection fuzz_sweep`.
//!
//! The file compiles without the feature too, so `cargo test` still
//! type-checks it; only the trivial build-mode guard runs there.

/// The injection layer must mirror the cargo feature exactly — this is the
/// run-time half of the zero-overhead guard (the compile-time half is the
/// `const` proof in `wfq_sync::fault`; the price check is in the
/// `primitives` bench).
#[test]
fn injection_layer_matches_build_mode() {
    assert_eq!(wfq_sync::fault::ENABLED, cfg!(feature = "fault-injection"));
    // The macro is an expression in both builds.
    let _: () = wfq_sync::inject!("fault_schedules::build_mode_probe");
}

#[cfg(feature = "fault-injection")]
mod fuzz {
    use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    use wfq_checker::{check_linearizable, check_necessary, CheckResult, OpKind, Recorder};
    use wfq_sync::fault::{self, FaultPlan};
    use wfq_sync::inject;
    use wfqueue::{Config, RawQueue};

    /// Cells per segment in fuzzed queues: small enough that a few dozen
    /// operations cross segment boundaries and exercise reclamation.
    const SEG: usize = 16;

    /// Distinct fuzz schedules per sweep. Each costs a few milliseconds;
    /// the CI fuzz job runs the same fixed range, so failures there are
    /// reproducible locally by seed.
    const SWEEP_SEEDS: u64 = 48;

    /// Value namespace: producer `t` enqueues `t * VALS_PER_THREAD + k + 1`
    /// so every enqueued value is unique and nonzero.
    const VALS_PER_THREAD: u64 = 12;

    fn thread_plan(seed: u64, thread: u64, intensity: u32) -> FaultPlan {
        // Golden-ratio salt: distinct deterministic stream per thread.
        FaultPlan::fuzz(seed ^ thread.wrapping_mul(0x9E37_79B9_7F4A_7C15), intensity)
    }

    /// With `--features trace` a failing schedule drains the flight
    /// recorders into a Chrome-trace artifact, so the panic message points
    /// at a Perfetto-loadable recording of the last protocol steps every
    /// thread took; without it, it says how to get one.
    fn failure_artifact(seed: u64) -> String {
        #[cfg(feature = "trace")]
        {
            let path = std::env::temp_dir().join(format!("wfq-fuzz-seed-{seed}.trace.json"));
            return match wfq_harness::dump_chrome_trace(&path) {
                Ok(n) => format!(
                    "\nflight recording ({n} events) dumped to {} — open in ui.perfetto.dev",
                    path.display()
                ),
                Err(e) => format!("\n(flight-recorder dump failed: {e})"),
            };
        }
        #[cfg(not(feature = "trace"))]
        {
            let _ = seed;
            String::from("\n(add --features trace for a flight recording of the failure)")
        }
    }

    /// One fuzzed schedule: `producers` + `consumers` threads hammer a
    /// fresh queue under per-thread seeded plans; returns the recorded
    /// history already certified by the *necessary-conditions* checker,
    /// and runs the exhaustive checker when the history is small enough.
    ///
    /// With `batch >= 2` every thread alternates single ops with batch ops
    /// of that width (one FAA per batch), recorded through the checker's
    /// batch helpers. The adjacency links those helpers attach are kept
    /// only when the queue's batch-straggler counters stayed at zero —
    /// i.e. every batch element really completed on the one-FAA fast path,
    /// which is exactly when a batch is k *adjacent* atomic ops. Under
    /// fault plans that force the slow paths, a straggler element may land
    /// past concurrent single ops, so dirty rounds demote each batch to k
    /// same-interval ops (conservation and real-time order still fully
    /// certified).
    fn run_schedule(seed: u64, cfg: Config, producers: u64, consumers: u64, batch: u32) {
        let q = RawQueue::<SEG>::with_config(cfg);
        let rec = Recorder::new();
        // Consumers poll a little more than was produced so EMPTY returns
        // (and the deq_slow EMPTY exit) are part of every history.
        let deq_attempts = (producers * VALS_PER_THREAD) / consumers + 4;

        std::thread::scope(|s| {
            for t in 0..producers {
                let q = &q;
                let mut tr = rec.thread();
                s.spawn(move || {
                    fault::with_plan(thread_plan(seed, t, 70), || {
                        let mut h = q.register();
                        let mut k = 0u64;
                        let mut use_batch = batch >= 2;
                        while k < VALS_PER_THREAD {
                            let width = u64::from(batch).min(VALS_PER_THREAD - k);
                            if use_batch && width >= 2 {
                                let vals: Vec<u64> = (0..width)
                                    .map(|j| t * VALS_PER_THREAD + k + j + 1)
                                    .collect();
                                let inv = tr.invoke();
                                h.enqueue_batch(&vals);
                                tr.record_enqueue_batch(&vals, inv);
                                k += width;
                            } else {
                                let v = t * VALS_PER_THREAD + k + 1;
                                let inv = tr.invoke();
                                h.enqueue(v);
                                tr.record(OpKind::Enqueue(v), inv);
                                k += 1;
                            }
                            if batch >= 2 {
                                use_batch = !use_batch;
                            }
                        }
                    });
                });
            }
            for t in 0..consumers {
                let q = &q;
                let mut tr = rec.thread();
                s.spawn(move || {
                    fault::with_plan(thread_plan(seed, producers + t, 70), || {
                        let mut h = q.register();
                        let mut out = Vec::new();
                        let mut polled = 0u64;
                        let mut use_batch = false;
                        while polled < deq_attempts {
                            if use_batch {
                                out.clear();
                                let inv = tr.invoke();
                                h.dequeue_batch(&mut out, batch as usize);
                                tr.record_dequeue_batch(&out, inv);
                                polled += u64::from(batch);
                            } else {
                                let inv = tr.invoke();
                                let got = h.dequeue();
                                tr.record(OpKind::Dequeue(got), inv);
                                polled += 1;
                            }
                            if batch >= 2 {
                                use_batch = !use_batch;
                            }
                        }
                    });
                });
            }
        });

        let stats = q.stats();
        let clean = stats.enq_batch_stragglers == 0
            && stats.enq_batch_abandoned == 0
            && stats.deq_batch_stragglers == 0;
        let mut h = rec.finish();
        if !clean {
            for op in &mut h.ops {
                op.batch = None;
            }
        }
        if let Err(v) = check_necessary(&h) {
            panic!(
                "necessary-condition violation under fuzz schedule: {v:?}\n\
                 reproduce: WFQ_FUZZ_SEED={seed} cargo test -p wfq-integration \
                 --features fault-injection fuzz_sweep{}",
                failure_artifact(seed)
            );
        }
        match check_linearizable(&h, 4_000_000) {
            CheckResult::NotLinearizable => panic!(
                "history not linearizable under fuzz schedule\n\
                 reproduce: WFQ_FUZZ_SEED={seed} cargo test -p wfq-integration \
                 --features fault-injection fuzz_sweep{}",
                failure_artifact(seed)
            ),
            // Linearizable, or the state cap was hit after the linear-time
            // necessary conditions already passed — both acceptable.
            _ => {}
        }
    }

    /// Schedule shapes the sweep cycles through (the last tuple field is
    /// the batch width; 0 disables batch ops). The patience-0 shapes force
    /// the wait-free slow paths (every lost fast-path race enlists
    /// helpers); the `max_garbage(1)` shapes force a reclamation pass at
    /// every segment retirement.
    fn schedule_for(seed: u64) -> (Config, u64, u64, u32) {
        match seed % 6 {
            // Slow-path stress: zero patience, consumer-heavy (cells get
            // ⊤-poisoned under the enqueuers, forcing enq_slow).
            0 => (Config::wf0().with_max_garbage(1), 2, 3, 0),
            // Reclamation stress: default patience, tiny garbage bound.
            1 => (Config::wf10().with_max_garbage(1), 3, 2, 0),
            // Mixed: low patience, balanced.
            2 => (
                Config::default().with_patience(1).with_max_garbage(2),
                2,
                2,
                0,
            ),
            // Producer-heavy WF-0: deep queues, segment turnover.
            3 => (Config::wf0().with_max_garbage(2), 3, 2, 0),
            // Bounded-memory mode: a ceiling tight enough that segment
            // acquisition goes through the recycling pool (and, when the
            // consumers lag, through the acquire stall/overshoot path).
            4 => (
                Config::wf0().with_max_garbage(1).with_segment_ceiling(3),
                2,
                2,
                0,
            ),
            // Batch shape: every thread interleaves one-FAA batch claims
            // (width 2–4, varying with the seed) with single-op claims,
            // under a low-patience config so batch stragglers meet the
            // helping protocol mid-batch.
            _ => (
                Config::default().with_patience(1).with_max_garbage(1),
                2,
                2,
                2 + ((seed / 6) % 3) as u32,
            ),
        }
    }

    /// The tentpole sweep: many seeded schedules, every history certified,
    /// and — because the coverage map is process-global — a final assert
    /// that the sweep reached **every** named injection point in the core
    /// crate at least once.
    #[test]
    fn fuzz_sweep_certifies_histories_and_covers_every_point() {
        // A pinned seed (from a failure message) replays one schedule.
        if let Ok(s) = std::env::var("WFQ_FUZZ_SEED") {
            let seed: u64 = s.parse().expect("WFQ_FUZZ_SEED must be a u64");
            let (cfg, p, c, b) = schedule_for(seed);
            run_schedule(seed, cfg, p, c, b);
            return;
        }
        for seed in 0..SWEEP_SEEDS {
            let (cfg, p, c, b) = schedule_for(seed);
            run_schedule(seed, cfg, p, c, b);
        }
        drive_bounded_points();
        drive_batch_points();
        drive_help_enq_point();
        let cov = fault::coverage();
        let missed: Vec<&str> = wfqueue::FAULT_POINTS
            .iter()
            .copied()
            .filter(|p| cov.get(p).copied().unwrap_or(0) == 0)
            .collect();
        assert!(
            missed.is_empty(),
            "fuzz sweep never reached injection points {missed:?}; \
             coverage: {cov:#?}"
        );
    }

    /// Deterministic drivers for the bounded-memory injection points: the
    /// fuzzed bounded schedules reach the pool in most runs, but the
    /// coverage assert must not depend on a race going one way, so each
    /// window is also driven single-threadedly.
    ///
    /// - `reclaim::forced` + `pool::push`/`pool::pop`: pairs traffic
    ///   through a tight ceiling with the dequeuer threshold disabled —
    ///   every boundary crossing is funded by an enqueuer-elected pass
    ///   recycling into (push) and out of (pop) the pool;
    /// - `pool::stall`: plain `enqueue` with no consumer fills past the
    ///   ceiling, spinning the acquire backoff until it saturates and
    ///   overshoots.
    fn drive_bounded_points() {
        let q = RawQueue::<SEG>::with_config(
            Config::default()
                .with_max_garbage(1_000_000)
                .with_segment_ceiling(2),
        );
        let mut h = q.register();
        for v in 1..=SEG as u64 * 8 {
            h.try_enqueue(v).expect("pairs traffic must recycle, not reject");
            assert_eq!(h.dequeue(), Some(v));
        }
        assert!(fault::coverage_count("reclaim::forced") > 0);
        assert!(fault::coverage_count("pool::push") > 0);
        assert!(fault::coverage_count("pool::pop") > 0);

        let q = RawQueue::<SEG>::with_config(
            Config::default().with_segment_ceiling(2),
        );
        let mut h = q.register();
        for v in 1..=SEG as u64 * 3 {
            h.enqueue(v); // plain enqueue: stalls, then overshoots
        }
        assert!(fault::coverage_count("pool::stall") > 0);
    }

    /// Deterministic drivers for the batch injection points (DESIGN.md
    /// §10), exploiting a protocol fact visible single-threadedly: an
    /// EMPTY probe ⊤-seals the cell `T` points at *without* advancing `T`,
    /// so the very next batch enqueue's FAA claims the sealed cell — its
    /// first element stragglers, the rest are abandoned, and the cells it
    /// left behind send the following batch dequeue down its straggler arm.
    /// No race required anywhere.
    fn drive_batch_points() {
        let q = RawQueue::<SEG>::with_config(Config::wf10());
        let mut h = q.register();

        // Seal the head-of-tail cell, then batch straight into it.
        assert_eq!(h.dequeue(), None);
        h.enqueue_batch(&[1, 2, 3]);
        assert!(fault::coverage_count("enq_batch::post_faa") > 0);
        assert!(fault::coverage_count("enq_batch::straggler") > 0);
        assert!(fault::coverage_count("enq_batch::abandon") > 0);

        // The straggler fallback left abandoned (⊤) cells below the new
        // values; a batch dequeue's claim run crosses them.
        let mut out = Vec::new();
        while out.len() < 3 {
            let before = out.len();
            h.dequeue_batch(&mut out, 3);
            assert!(out.len() > before, "batch values lost: {out:?}");
        }
        assert_eq!(out, vec![1, 2, 3], "straggler fallback broke batch FIFO");
        assert!(fault::coverage_count("deq_batch::post_faa") > 0);
        assert!(fault::coverage_count("deq_batch::straggler") > 0);

        // Partial claim: one value available, two requested — the (H, T)
        // snapshot trims the claim before the FAA.
        let q = RawQueue::<SEG>::with_config(Config::wf10());
        let mut h = q.register();
        h.enqueue(7);
        let mut out = Vec::new();
        assert_eq!(h.dequeue_batch(&mut out, 2), 1);
        assert_eq!(out, vec![7]);
        assert!(fault::coverage_count("deq_batch::partial_probe") > 0);
    }

    /// Deterministic driver for `help_enq::pre_complete` — a dequeuer
    /// completing a *pending* slow-path enqueue request. The fuzzed
    /// schedules reach it in most runs, but the window needs a dequeuer to
    /// arrive while a request is still pending, so under an unlucky
    /// scheduler the sweep alone can miss it. Staged without a race:
    ///
    /// 1. handle M's empty probe ⊤-seals cell 0 (H: 0 → 1, T stays 0);
    /// 2. handle A (patience 0) enqueues: its one fast attempt claims the
    ///    sealed cell, fails, publishes a slow-path request — and a fault
    ///    hook parks A right there, request pending;
    /// 3. handle B registers *after* A, so the ring splice points B's
    ///    `enq_peer` at A, and B's single `H == T` probe (cell 1) finds the
    ///    pending request via the peer scan, reserves it into its cell, and
    ///    completes it — `help_enq::pre_complete` — returning A's value.
    fn drive_help_enq_point() {
        let q = RawQueue::<SEG>::with_config(Config::wf0());
        let mut m = q.register(); // the ring anchor; stays live so B's
                                  // node is a fresh splice, not a recycle
        assert_eq!(m.dequeue(), None); // seals cell 0

        let parked = Arc::new(Event::default());
        let release = Arc::new(Event::default());
        std::thread::scope(|s| {
            {
                let q = &q;
                let (parked, release) = (Arc::clone(&parked), Arc::clone(&release));
                s.spawn(move || {
                    let mut a = q.register();
                    let p = Arc::clone(&parked);
                    let r = Arc::clone(&release);
                    fault::with_plan(
                        FaultPlan::new().hook_at(
                            "enq_slow::request_published",
                            0,
                            Arc::new(move |_| {
                                p.set();
                                r.wait();
                            }),
                        ),
                        || a.enqueue(42),
                    );
                });
            }
            parked.wait();
            let before = fault::coverage_count("help_enq::pre_complete");
            let mut b = q.register();
            assert_eq!(
                b.dequeue(),
                Some(42),
                "the probe must complete the parked request and take its value"
            );
            assert!(
                fault::coverage_count("help_enq::pre_complete") > before,
                "helping a parked pending request must pass pre_complete"
            );
            release.set();
        });
    }

    /// The branch counters behind the paper's Table 2 extension: a
    /// slow-path-heavy schedule must light up the helping-protocol
    /// counters, proving the sweep exercises the *branches*, not merely
    /// the straight-line code around them.
    #[test]
    fn slow_path_branch_counters_are_driven() {
        let mut agg = wfqueue::QueueStats::default();
        for seed in 1000..1000 + SWEEP_SEEDS {
            let q = RawQueue::<SEG>::with_config(Config::wf0().with_max_garbage(1));
            std::thread::scope(|s| {
                for t in 0..4u64 {
                    let q = &q;
                    s.spawn(move || {
                        fault::with_plan(thread_plan(seed, t, 80), || {
                            let mut h = q.register();
                            for k in 0..24 {
                                if (k + t) % 2 == 0 {
                                    h.enqueue(t * 1000 + k + 1);
                                } else {
                                    let _ = h.dequeue();
                                }
                            }
                        });
                    });
                }
            });
            let s = q.stats();
            agg.enq_slow += s.enq_slow;
            agg.deq_slow += s.deq_slow;
            agg.help_enq_seal += s.help_enq_seal;
            agg.help_deq_announce += s.help_deq_announce;
            agg.help_deq_complete += s.help_deq_complete;
            agg.cleanups += s.cleanups;
            agg.reclaim_noop += s.reclaim_noop;
            agg.segs_freed += s.segs_freed;
        }
        assert!(agg.enq_slow > 0, "no slow-path enqueue in the sweep: {agg:?}");
        assert!(agg.deq_slow > 0, "no slow-path dequeue in the sweep: {agg:?}");
        assert!(agg.help_enq_seal > 0, "no cell ever ⊤e-sealed: {agg:?}");
        assert!(
            agg.help_deq_announce > 0,
            "help_deq never announced a candidate: {agg:?}"
        );
        assert!(
            agg.help_deq_complete > 0,
            "help_deq never completed a request: {agg:?}"
        );
        assert!(agg.cleanups > 0, "reclamation never ran: {agg:?}");
        assert!(agg.segs_freed > 0, "reclamation never freed: {agg:?}");
    }

    // ------------------------------------------------------------------
    // Shape 7: the bounded-ring backends (SCQ / wCQ) under the same
    // seeded fault plans, every history certified — plus deterministic
    // drivers for the ring injection points so the coverage assert never
    // depends on a race going one way.
    // ------------------------------------------------------------------

    /// One fuzzed ring schedule, generic over any [`BenchQueue`] backend:
    /// producers and consumers hammer `q` under per-thread plans, the
    /// recorded history is certified (necessary conditions always; the
    /// exhaustive search up to its state cap).
    fn run_ring_schedule<Q: wfq_baselines::BenchQueue>(
        seed: u64,
        q: Q,
        producers: u64,
        consumers: u64,
    ) {
        use wfq_baselines::QueueHandle as _;
        let rec = Recorder::new();
        // Consumers drain until every produced value is delivered — a fixed
        // attempt budget could exit while a producer is still blocked on a
        // full capacity-16 ring, leaving its blocking enqueue spinning
        // forever. The spin caps turn a genuine liveness bug (or a lost
        // value) into a seed-stamped panic on every thread instead of a
        // hung test: whoever trips a cap raises `abort`, and the others
        // bail out so the scope can join and surface the panic.
        let target = producers * VALS_PER_THREAD;
        let delivered = AtomicU64::new(0);
        let abort = AtomicBool::new(false);
        const SPIN_CAP: u64 = 5_000_000;
        std::thread::scope(|s| {
            for t in 0..producers {
                let q = &q;
                let abort = &abort;
                let mut tr = rec.thread();
                s.spawn(move || {
                    fault::with_plan(thread_plan(seed, t, 70), || {
                        let mut h = q.register();
                        for k in 0..VALS_PER_THREAD {
                            let v = t * VALS_PER_THREAD + k + 1;
                            let inv = tr.invoke();
                            let mut spins = 0u64;
                            while h.try_enqueue(v).is_err() {
                                if abort.load(Ordering::Relaxed) {
                                    return;
                                }
                                spins += 1;
                                if spins > SPIN_CAP {
                                    abort.store(true, Ordering::Relaxed);
                                    panic!(
                                        "{}: producer {t} starved on a full ring \
                                         (seed {seed}): consumers are not draining",
                                        Q::NAME
                                    );
                                }
                                std::thread::yield_now();
                            }
                            tr.record(OpKind::Enqueue(v), inv);
                        }
                    });
                });
            }
            for t in 0..consumers {
                let q = &q;
                let (delivered, abort) = (&delivered, &abort);
                let mut tr = rec.thread();
                s.spawn(move || {
                    fault::with_plan(thread_plan(seed, producers + t, 70), || {
                        let mut h = q.register();
                        // Bound the *recorded* empty probes: dropping a
                        // Dequeue(None) from a history only removes a
                        // constraint, and unbounded recording would bloat
                        // the exhaustive search for no extra signal.
                        let mut none_budget = 64u64;
                        let mut attempts = 0u64;
                        while delivered.load(Ordering::Relaxed) < target {
                            if abort.load(Ordering::Relaxed) {
                                return;
                            }
                            attempts += 1;
                            if attempts > SPIN_CAP {
                                abort.store(true, Ordering::Relaxed);
                                panic!(
                                    "{}: consumer starved with {}/{target} values \
                                     delivered (seed {seed}): values were lost",
                                    Q::NAME,
                                    delivered.load(Ordering::Relaxed)
                                );
                            }
                            let inv = tr.invoke();
                            let got = h.dequeue();
                            match got {
                                Some(_) => {
                                    tr.record(OpKind::Dequeue(got), inv);
                                    delivered.fetch_add(1, Ordering::Relaxed);
                                }
                                None => {
                                    if none_budget > 0 {
                                        none_budget -= 1;
                                        tr.record(OpKind::Dequeue(None), inv);
                                    }
                                    std::thread::yield_now();
                                }
                            }
                        }
                    });
                });
            }
        });
        let h = rec.finish();
        if let Err(v) = check_necessary(&h) {
            panic!(
                "{}: necessary-condition violation under ring schedule: {v:?}\n\
                 reproduce: WFQ_RING_SEED={seed} cargo test -p wfq-integration \
                 --features fault-injection ring_backend_sweep{}",
                Q::NAME,
                failure_artifact(seed)
            );
        }
        if let CheckResult::NotLinearizable = check_linearizable(&h, 4_000_000) {
            panic!(
                "{}: history not linearizable under ring schedule\n\
                 reproduce: WFQ_RING_SEED={seed} cargo test -p wfq-integration \
                 --features fault-injection ring_backend_sweep{}",
                Q::NAME,
                failure_artifact(seed)
            );
        }
    }

    /// Ring schedule shapes: tiny rings (order 4 → capacity 16, under 24
    /// values in flight) force cycle wraps, full-ring spins and threshold
    /// churn; the patience-0 wCQ shape routes *every* operation through
    /// the helping records.
    fn ring_schedule(seed: u64) {
        use wfq_baselines::{Scq, Wcq};
        match seed % 3 {
            0 => run_ring_schedule(seed, Scq::with_order(4), 2, 3),
            1 => run_ring_schedule(seed, Wcq::with_params(4, 2), 2, 3),
            _ => run_ring_schedule(seed, Wcq::with_params(4, 0), 3, 2),
        }
    }

    /// Shape 7 of the sweep (the ring backends), with the same seed count
    /// as the WF sweep so a CI run certifies SCQ/wCQ under 48 schedules.
    #[test]
    fn ring_backend_sweep_certifies_histories_and_covers_ring_points() {
        if let Ok(s) = std::env::var("WFQ_RING_SEED") {
            let seed: u64 = s.parse().expect("WFQ_RING_SEED must be a u64");
            ring_schedule(seed);
            return;
        }
        for seed in 0..SWEEP_SEEDS {
            ring_schedule(seed);
        }
        drive_ring_points();
        let cov = fault::coverage();
        let missed: Vec<&str> = wfq_baselines::FAULT_POINTS
            .iter()
            .copied()
            .filter(|p| p.starts_with("scq::") || p.starts_with("wcq::"))
            .filter(|p| cov.get(p).copied().unwrap_or(0) == 0)
            .collect();
        assert!(
            missed.is_empty(),
            "ring sweep never reached injection points {missed:?}; \
             coverage: {cov:#?}"
        );
    }

    /// Deterministic drivers for every `scq::`/`wcq::` injection point.
    /// Each window is staged so reaching it needs no lost race:
    ///
    /// - the SCQ happy paths (`pre_cas`, `threshold_reset`, `pre_consume`)
    ///   fire on any enqueue/dequeue pair;
    /// - `slot_advance` + `catchup` fire on the first empty probe after a
    ///   consume (head's slot holds an old-cycle ⊥, tail has caught up);
    /// - `threshold_decrement` needs `tail > head + 1` at a failed ticket:
    ///   an enqueuer parked at `scq::enq::pre_cas` (ticket claimed, value
    ///   not yet installed) while a second enqueue lands behind it makes
    ///   the next dequeue's first ticket fail exactly there;
    /// - the wCQ slow-path points all fire single-threadedly at patience
    ///   0 (publish → owner-help → install → finalize; the dequeue side
    ///   re-marks the entry via `consume_mark`);
    /// - `wcq::help::takeover` parks the *owner* between installing its
    ///   entry and finalizing its record (`wcq::enq_slow::finalize`), so
    ///   the consumer must finish the record before consuming.
    fn drive_ring_points() {
        use wfq_baselines::{BenchQueue as _, QueueHandle as _, Scq, Wcq};

        // SCQ happy paths + certified-empty probe.
        let q = Scq::with_order(3);
        let mut h = q.register();
        h.enqueue(1); // pre_cas, threshold_reset
        assert_eq!(h.dequeue(), Some(1)); // pre_consume
        assert_eq!(h.dequeue(), None); // slot_advance (kill) + catchup
        assert!(fault::coverage_count("scq::enq::pre_cas") > 0);
        assert!(fault::coverage_count("scq::enq::threshold_reset") > 0);
        assert!(fault::coverage_count("scq::deq::pre_consume") > 0);
        assert!(fault::coverage_count("scq::deq::slot_advance") > 0);
        assert!(fault::coverage_count("scq::deq::catchup") > 0);

        // SCQ threshold_decrement: park enqueuer A after its FAA claimed
        // the aq ticket but before the value-install CAS; a second enqueue
        // then lands behind the hole, and the next dequeue's first ticket
        // finds an empty slot with tail > head + 1.
        let q = Scq::with_order(3);
        let parked = Arc::new(Event::default());
        let release = Arc::new(Event::default());
        // Outcomes are captured inside the scope and asserted only after
        // it: a panic before `release.set()` would deadlock on joining the
        // parked thread.
        let mut got = None;
        let mut decremented = false;
        std::thread::scope(|s| {
            {
                let q = &q;
                let (parked, release) = (Arc::clone(&parked), Arc::clone(&release));
                s.spawn(move || {
                    let mut a = q.register();
                    let p = Arc::clone(&parked);
                    let r = Arc::clone(&release);
                    fault::with_plan(
                        FaultPlan::new().hook_at(
                            "scq::enq::pre_cas",
                            0,
                            Arc::new(move |_| {
                                p.set();
                                r.wait();
                            }),
                        ),
                        || a.enqueue(11),
                    );
                });
            }
            parked.wait();
            let mut b = q.register();
            b.enqueue(22);
            let before = fault::coverage_count("scq::deq::threshold_decrement");
            got = b.dequeue();
            decremented = fault::coverage_count("scq::deq::threshold_decrement") > before;
            release.set();
        });
        assert_eq!(got, Some(22), "the hole must be skipped");
        assert!(
            decremented,
            "skipping a claimed-but-empty ticket must decrement the threshold"
        );
        // A's install lands on a later ticket; nothing is lost.
        let mut h = q.register();
        assert_eq!(h.dequeue(), Some(11));

        // wCQ slow paths, single-threaded at patience 0.
        let q = Wcq::with_params(3, 0);
        let mut h = q.register();
        h.enqueue(5); // enq_slow: published, install, finalize
        assert_eq!(h.dequeue(), Some(5)); // deq_slow: published, consume_mark, finalize
        assert_eq!(h.dequeue(), None);
        assert!(fault::coverage_count("wcq::enq_slow::published") > 0);
        assert!(fault::coverage_count("wcq::enq_slow::install") > 0);
        assert!(fault::coverage_count("wcq::enq_slow::finalize") > 0);
        assert!(fault::coverage_count("wcq::deq_slow::published") > 0);
        assert!(fault::coverage_count("wcq::deq_slow::consume_mark") > 0);
        assert!(fault::coverage_count("wcq::deq_slow::finalize") > 0);
        drop(h);

        // wCQ takeover: owner A parks between installing its SLOW_ENQ
        // entry and finalizing its record; consumer B must finalize A's
        // record (the takeover) before it may consume the value.
        //
        // Staging details that make this race-free:
        // - B slow-enqueues a sentinel *first*, so the threshold is reset
        //   and B's dequeues are not turned away by the certified-empty
        //   fast path (A parks before its own `reset_threshold`).
        // - A registers first (tid 0) and B second (tid 1): B's help
        //   cursor starts at its own tid and only walks peers 2, 3, 4 in
        //   the three operations below, so B's round-robin `maybe_help`
        //   cannot finalize A's record early — only the consume path
        //   (`resolve_slow_enq`, the takeover) can.
        // - Outcomes are asserted after the scope (a panic before
        //   `release.set()` would deadlock on joining the parked thread).
        let q = Wcq::with_params(3, 0);
        let parked = Arc::new(Event::default());
        let release = Arc::new(Event::default());
        let mut first = None;
        let mut second = None;
        let mut takeover_fired = false;
        std::thread::scope(|s| {
            let mut a = q.register(); // tid 0
            let mut b = q.register(); // tid 1
            b.enqueue(7); // ticket 0; resets the threshold
            {
                let (parked, release) = (Arc::clone(&parked), Arc::clone(&release));
                s.spawn(move || {
                    let p = Arc::clone(&parked);
                    let r = Arc::clone(&release);
                    fault::with_plan(
                        FaultPlan::new().hook_at(
                            "wcq::enq_slow::finalize",
                            0,
                            Arc::new(move |_| {
                                p.set();
                                r.wait();
                            }),
                        ),
                        || a.enqueue(42), // ticket 1, parked after install
                    );
                });
            }
            parked.wait();
            let before = fault::coverage_count("wcq::help::takeover");
            first = b.dequeue(); // drains the sentinel at ticket 0
            second = b.dequeue(); // hits A's pending entry at ticket 1
            takeover_fired = fault::coverage_count("wcq::help::takeover") > before;
            release.set();
        });
        assert_eq!(first, Some(7), "the sentinel must come out first (FIFO)");
        assert_eq!(
            second,
            Some(42),
            "consumer must take over the parked enqueue and get its value"
        );
        assert!(
            takeover_fired,
            "consuming a pending slow enqueue must finalize its record first"
        );
    }

    /// Baselines ride the same machinery: fuzz the LCRQ and MS-Queue
    /// hazard-pointer windows, check conservation, assert their exported
    /// point list is fully covered.
    #[test]
    fn baseline_sweep_covers_baseline_points() {
        use wfq_baselines::{Lcrq, MsQueue, QueueHandle};

        fn drive<Q: wfq_baselines::BenchQueue>(q: &Q, seed: u64) {
            let total = AtomicU64::new(0);
            let sum = AtomicU64::new(0);
            const PER: u64 = 100;
            std::thread::scope(|s| {
                for t in 0..2u64 {
                    let q = &q;
                    s.spawn(move || {
                        fault::with_plan(thread_plan(seed, t, 60), || {
                            let mut h = q.register();
                            for k in 0..PER {
                                h.enqueue(t * PER + k + 1);
                            }
                        });
                    });
                }
                for t in 0..2u64 {
                    let q = &q;
                    let (total, sum) = (&total, &sum);
                    s.spawn(move || {
                        fault::with_plan(thread_plan(seed, 2 + t, 60), || {
                            let mut h = q.register();
                            while total.load(Ordering::Relaxed) < 2 * PER {
                                if let Some(v) = h.dequeue() {
                                    sum.fetch_add(v, Ordering::Relaxed);
                                    total.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                        });
                    });
                }
            });
            assert_eq!(
                sum.load(Ordering::Relaxed),
                (1..=2 * PER).sum::<u64>(),
                "baseline lost or corrupted values under fuzz seed {seed}"
            );
        }

        for seed in 0..8 {
            // Tiny rings force LCRQ close-and-append transitions (and the
            // drained-ring unlink on the dequeue side).
            drive(&Lcrq::with_ring_order(3), seed);
            drive(&MsQueue::new(), seed);
            // The bounded-ring backends share the conservation check; the
            // tiny orders force cycle wraps and full-ring spins.
            drive(&wfq_baselines::Scq::with_order(4), seed);
            drive(&wfq_baselines::Wcq::with_params(4, 1), seed);
        }
        // The coverage assert below spans every baseline point, so it must
        // not depend on `ring_backend_sweep_*` having run first in this
        // process: stage the race-free ring windows here too.
        drive_ring_points();

        let cov = fault::coverage();
        let missed: Vec<&str> = wfq_baselines::FAULT_POINTS
            .iter()
            .copied()
            .filter(|p| cov.get(p).copied().unwrap_or(0) == 0)
            .collect();
        assert!(
            missed.is_empty(),
            "baseline sweep never reached {missed:?}; coverage: {cov:#?}"
        );
    }

    // ------------------------------------------------------------------
    // Negative control (the certification step must have teeth)
    // ------------------------------------------------------------------

    /// A deliberately broken "queue": LIFO order behind a lock. Sequential
    /// `enq 1, enq 2, deq → 2` is impossible for any FIFO queue, so the
    /// checker must reject it — if this test ever passes a broken history,
    /// the fuzz sweep's green runs mean nothing.
    struct BrokenLifo(Mutex<Vec<u64>>);

    impl BrokenLifo {
        fn enqueue(&self, v: u64) {
            inject!("broken::push");
            self.0.lock().unwrap().push(v);
        }
        fn dequeue(&self) -> Option<u64> {
            inject!("broken::pop");
            self.0.lock().unwrap().pop() // LIFO: the bug
        }
    }

    #[test]
    fn negative_control_broken_queue_is_flagged() {
        let seed = 0xBAD_5EED;
        let q = BrokenLifo(Mutex::new(Vec::new()));
        let rec = Recorder::new();
        let mut tr = rec.thread();
        // Run under a real fuzz plan: perturbations must not stop the
        // checker from seeing through to the semantics.
        fault::with_plan(FaultPlan::fuzz(seed, 70), || {
            for v in [1, 2, 3] {
                let inv = tr.invoke();
                q.enqueue(v);
                tr.record(OpKind::Enqueue(v), inv);
            }
            for _ in 0..3 {
                let inv = tr.invoke();
                let got = q.dequeue();
                tr.record(OpKind::Dequeue(got), inv);
            }
        });
        drop(tr);
        let h = rec.finish();
        // All operations are sequential (one thread), so dequeuing 3 first
        // admits no valid linearization.
        assert!(
            matches!(check_linearizable(&h, 1_000_000), CheckResult::NotLinearizable),
            "checker failed to flag a LIFO history — negative control broken"
        );
        // The injection points inside the broken queue were really hit.
        assert!(fault::coverage_count("broken::pop") >= 3);
    }

    // ------------------------------------------------------------------
    // Targeted regression: the hazard window of Listing 5
    // ------------------------------------------------------------------

    /// A tiny event the hook-side thread can park on.
    #[derive(Default)]
    struct Event(Mutex<bool>, Condvar);

    impl Event {
        fn set(&self) {
            *self.0.lock().unwrap() = true;
            self.1.notify_all();
        }
        fn wait(&self) {
            let mut g = self.0.lock().unwrap();
            while !*g {
                g = self.1.wait(g).unwrap();
            }
        }
    }

    /// Parks a dequeuer *between publishing its hazard and using it* (the
    /// `deq::hazard_published` point — the window the reclaimer's scans
    /// must respect) while another thread churns segments and triggers
    /// cleanup after cleanup. The cleaner must observe the parked hazard
    /// (id 0), clamp its boundary, and refuse to free anything; after
    /// release, the same traffic must reclaim freely. This pins the exact
    /// behaviour that the reverse re-verification pass and the boundary
    /// clamp exist for — a reclaimer that ignored parked hazards would
    /// free segment 0 under the parked thread and crash (or silently
    /// corrupt) on release.
    #[test]
    fn reclaimer_never_passes_a_parked_hazard() {
        let q = RawQueue::<SEG>::with_config(Config::default().with_max_garbage(1));
        let parked = Arc::new(Event::default());
        let release = Arc::new(Event::default());
        let dequeued_while_parked = Arc::new(AtomicI64::new(-1));

        std::thread::scope(|s| {
            // Thread A: dequeue once with a hook that parks inside the
            // hazard window. Its hazard mirror is segment 0 (fresh handle),
            // so the published hazard pins the very first segment.
            {
                let q = &q;
                let (parked, release) = (Arc::clone(&parked), Arc::clone(&release));
                s.spawn(move || {
                    let mut h = q.register();
                    let p = Arc::clone(&parked);
                    let r = Arc::clone(&release);
                    fault::with_plan(
                        FaultPlan::new().hook_at(
                            "deq::hazard_published",
                            0,
                            Arc::new(move |_| {
                                p.set();
                                r.wait();
                            }),
                        ),
                        || {
                            let _ = h.dequeue();
                        },
                    );
                });
            }

            // Thread B: once A is parked, push enough traffic through to
            // retire many segments and trigger a cleanup at each one.
            {
                let q = &q;
                let parked = Arc::clone(&parked);
                let release = Arc::clone(&release);
                let dwp = Arc::clone(&dequeued_while_parked);
                s.spawn(move || {
                    parked.wait();
                    let mut h = q.register();
                    let total = SEG as u64 * 40;
                    for v in 1..=total {
                        h.enqueue(v);
                        let _ = h.dequeue();
                    }
                    let s1 = q.stats();
                    // Cleanups ran (the traffic crossed ~40 segment
                    // boundaries with a garbage bound of 1)…
                    assert!(
                        s1.cleanups > 0,
                        "traffic never elected a cleaner: {s1:?}"
                    );
                    // …but every single one backed off at A's hazard:
                    assert_eq!(
                        s1.segs_freed, 0,
                        "reclaimer freed past a parked hazard: {s1:?}"
                    );
                    assert!(
                        s1.reclaim_noop > 0,
                        "cleanups ran but the no-op path never taken: {s1:?}"
                    );
                    // The oldest-segment token, whenever free, still names
                    // segment 0 — the boundary never advanced.
                    let oid = q.oldest_segment_id();
                    assert!(
                        oid <= 0,
                        "oldest segment advanced to {oid} past the parked hazard"
                    );
                    dwp.store(s1.segs_freed as i64, Ordering::SeqCst);
                    release.set();
                });
            }
        });

        // A released: its dequeue completed against a segment that was
        // never freed under it. Now the hazard is gone — the same traffic
        // must reclaim.
        let mut h = q.register();
        let total = SEG as u64 * 40;
        for v in 1..=total {
            h.enqueue(v);
            assert!(h.dequeue().is_some(), "value lost after release");
        }
        drop(h);
        let s2 = q.stats();
        assert!(
            s2.segs_freed > 0,
            "reclamation still stuck after the hazard was released: {s2:?}"
        );
        assert_eq!(dequeued_while_parked.load(Ordering::SeqCst), 0);
    }

    /// The batch analogue of the parked-hazard regression: a *batch*
    /// dequeuer parks between publishing its entry hazard and the claiming
    /// FAA (batch ops share the single-op `deq::hazard_published` window),
    /// while another thread churns segments with pure batch traffic. The
    /// batch claim covers k cells under one hazard, so a reclaimer that
    /// treated batch hazards any differently from single-op hazards would
    /// free the parked thread's segment out from under its whole claim
    /// run. The cleaner must refuse to free anything until release.
    #[test]
    fn batch_ops_respect_a_parked_hazard() {
        let q = RawQueue::<SEG>::with_config(Config::default().with_max_garbage(1));
        let parked = Arc::new(Event::default());
        let release = Arc::new(Event::default());

        std::thread::scope(|s| {
            // Thread A: a batch dequeue parked inside the hazard window,
            // pinning segment 0 (fresh handle).
            {
                let q = &q;
                let (parked, release) = (Arc::clone(&parked), Arc::clone(&release));
                s.spawn(move || {
                    let mut h = q.register();
                    let p = Arc::clone(&parked);
                    let r = Arc::clone(&release);
                    let mut out = Vec::new();
                    fault::with_plan(
                        FaultPlan::new().hook_at(
                            "deq::hazard_published",
                            0,
                            Arc::new(move |_| {
                                p.set();
                                r.wait();
                            }),
                        ),
                        || {
                            let _ = h.dequeue_batch(&mut out, 4);
                        },
                    );
                });
            }

            // Thread B: pure batch churn across many segment boundaries.
            {
                let q = &q;
                let parked = Arc::clone(&parked);
                let release = Arc::clone(&release);
                s.spawn(move || {
                    parked.wait();
                    let mut h = q.register();
                    let mut out = Vec::new();
                    let mut batch = [0u64; 8];
                    let mut v = 0u64;
                    for _ in 0..SEG as u64 * 40 / 8 {
                        for slot in &mut batch {
                            v += 1;
                            *slot = v;
                        }
                        h.enqueue_batch(&batch);
                        out.clear();
                        let _ = h.dequeue_batch(&mut out, 8);
                    }
                    let s1 = q.stats();
                    assert!(s1.enq_batches > 0 && s1.deq_batches > 0);
                    assert!(
                        s1.cleanups > 0,
                        "batch traffic never elected a cleaner: {s1:?}"
                    );
                    assert_eq!(
                        s1.segs_freed, 0,
                        "reclaimer freed past a parked batch dequeuer: {s1:?}"
                    );
                    release.set();
                });
            }
        });

        // Hazard released: the same batch traffic must reclaim freely.
        let mut h = q.register();
        let mut out = Vec::new();
        let mut batch = [0u64; 8];
        let mut v = 1 << 20;
        for _ in 0..SEG as u64 * 40 / 8 {
            for slot in &mut batch {
                v += 1;
                *slot = v;
            }
            h.enqueue_batch(&batch);
            out.clear();
            let _ = h.dequeue_batch(&mut out, 8);
        }
        drop(h);
        let s2 = q.stats();
        assert!(
            s2.segs_freed > 0,
            "reclamation still stuck after the batch hazard was released: {s2:?}"
        );
    }

    /// The fuzz sweep must also reach the adopted-hazard instruction — the
    /// *source* of backward jumps (help_deq overwriting its own hazard
    /// with the helpee's older one, Listing 5 line 220). Guarded here
    /// separately because it is the subtlest window in the protocol and a
    /// refactor that silently stopped exercising it should fail loudly.
    #[test]
    fn backward_jump_source_is_reachable() {
        for seed in 0..16 {
            let q = RawQueue::<SEG>::with_config(Config::wf0().with_max_garbage(1));
            std::thread::scope(|s| {
                for t in 0..4u64 {
                    let q = &q;
                    s.spawn(move || {
                        fault::with_plan(thread_plan(seed, t, 80), || {
                            let mut h = q.register();
                            for k in 0..32 {
                                if (k + t) % 2 == 0 {
                                    h.enqueue(t * 1000 + k + 1);
                                } else {
                                    let _ = h.dequeue();
                                }
                            }
                        });
                    });
                }
            });
            if fault::coverage_count("help_deq::hazard_adopted") > 0 {
                return;
            }
        }
        panic!(
            "no schedule in 16 seeds drove help_deq to adopt a helpee's \
             hazard; coverage: {:#?}",
            fault::coverage()
        );
    }
}
