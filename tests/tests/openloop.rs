//! Acceptance tests for the open-loop latency observatory: attribution
//! soundness (every sampled operation is exactly one of fast / slow /
//! helped) and the zero-overhead contract of the `op-sample` hooks.
//!
//! The attribution tests need the queue built with path sampling:
//!
//! ```text
//! cargo test -p wfq-integration --features op-sample --test openloop
//! ```
//!
//! Without the feature this file still runs the default-build half: the
//! hooks must be compile-time inert (`SAMPLING_ENABLED == false`, every
//! `last_op_sample()` a constant `None`, attribution permanently empty).

use wfq_baselines::BenchQueue;
use wfq_harness::{measure_open_loop, ArrivalSchedule, OpenLoopConfig};
use wfqueue::RawQueue;

fn observatory_cfg(threads: usize, total_ops: u64) -> OpenLoopConfig {
    OpenLoopConfig {
        threads,
        // Far below even this host's capacity, so the run finishes quickly
        // and unsaturated; the soundness invariant is rate-independent.
        rate_ops_per_sec: 2e6,
        total_ops,
        schedule: ArrivalSchedule::FixedRate,
        invocations: 1,
        pin: false,
        ..OpenLoopConfig::default()
    }
}

#[cfg(not(feature = "op-sample"))]
mod default_build {
    use super::*;

    #[test]
    fn sampling_is_compiled_out() {
        assert!(!wfqueue::SAMPLING_ENABLED);
        let q = <RawQueue as BenchQueue>::new();
        let mut h = RawQueue::register(&q);
        h.enqueue(7);
        assert_eq!(h.dequeue(), Some(7));
        assert_eq!(h.last_op_sample(), None, "default build: hooks are inert");
    }

    #[test]
    fn open_loop_attribution_stays_empty_without_the_feature() {
        let m = measure_open_loop::<RawQueue>(&observatory_cfg(2, 2_000));
        assert_eq!(m.merged.count(), 2_000, "latency is recorded regardless");
        assert_eq!(m.attribution.sampled(), 0, "no samples without op-sample");
        assert!(m.attribution.counts_are_sound());
    }
}

#[cfg(feature = "op-sample")]
mod sampled_build {
    use super::*;
    use wfq_baselines::Wf0;

    #[test]
    fn every_operation_leaves_a_sample() {
        assert!(wfqueue::SAMPLING_ENABLED);
        let q = <RawQueue as BenchQueue>::new();
        let mut h = RawQueue::register(&q);
        assert_eq!(h.last_op_sample(), None, "no sample before the first op");
        h.enqueue(7);
        let s = h.last_op_sample().expect("enqueue must leave a sample");
        assert_eq!(s.side, wfqueue::OpSide::Enq);
        assert_eq!(h.dequeue(), Some(7));
        let s = h.last_op_sample().expect("dequeue must leave a sample");
        assert_eq!(s.side, wfqueue::OpSide::Deq);
    }

    /// The issue's acceptance criterion: under 16 threads, `fast + slow +
    /// helped` must account for **every** sampled operation — no op is
    /// double-counted, none vanishes — and on the WF backend every executed
    /// operation is sampled.
    #[test]
    fn attribution_sums_are_sound_at_16_threads() {
        let m = measure_open_loop::<RawQueue>(&observatory_cfg(16, 16_000));
        assert_eq!(m.merged.count(), 16_000);
        assert!(
            m.attribution.counts_are_sound(),
            "fast+slow+helped must equal sampled: {}",
            m.attribution.render()
        );
        assert_eq!(
            m.attribution.sampled(),
            m.merged.count(),
            "WF backend: every op carries a path sample"
        );
        let (f, s, h) = m.attribution.shares();
        assert!(
            (f + s + h - 1.0).abs() < 1e-9,
            "shares must partition the sampled ops: {f} + {s} + {h}"
        );
    }

    /// Same invariant on WF-0 (patience 0), which falls back to the slow
    /// path on the first failed FAA — the classes beyond `fast` get
    /// exercised under contention without breaking the partition.
    #[test]
    fn attribution_sums_are_sound_on_the_slow_path_heavy_backend() {
        let m = measure_open_loop::<Wf0>(&observatory_cfg(16, 16_000));
        assert!(
            m.attribution.counts_are_sound(),
            "{}",
            m.attribution.render()
        );
        assert_eq!(m.attribution.sampled(), m.merged.count());
    }
}
