//! Crash-injection matrix and recovery certification (ISSUE 8).
//!
//! The durable mode's contract is *detectable recovery*: after a crash,
//! the persistent image alone decides each pre-crash enqueue's fate, and
//! recovery must deliver every durably committed value exactly once — in
//! FIFO order — while provably rejecting everything else. These tests
//! drive that contract the same way `fault_schedules.rs` drives
//! linearizability:
//!
//! - a **crash matrix** arms every durable-relevant injection point with
//!   [`FaultAction::Crash`] across ≥16 seeds each, snapshots the persist
//!   store *inside* the crash window (the registered crash observer runs
//!   on the crashing thread, before the unwind), recovers from the
//!   snapshot, and certifies the run with the recovery checker;
//! - a **deterministic scenario** stages the claimed-but-uncommitted help
//!   window (`enq_slow::pre_commit`) without any race and checks the
//!   recovered value byte for byte;
//! - a **negative control** re-runs recovery with the help-replay
//!   disabled and requires the checker to convict the loss — a green
//!   matrix means nothing if a broken recovery could also pass.
//!
//! Runs are deterministic given a seed; a failure message names the
//! `(point, seed)` pair to replay.
//!
//! Requires `--features durable,fault-injection`; the file compiles to a
//! single trivial guard without them.

/// The durable feature of the queue under test must mirror this crate's.
#[test]
fn durable_feature_matches_build_mode() {
    // Nothing to assert cross-crate without a runtime probe; the real
    // content of this file is gated below. This guard only keeps the file
    // compiling (and visibly present) in every feature combination.
    assert!(true);
}

#[cfg(all(feature = "durable", feature = "fault-injection"))]
mod matrix {
    use std::collections::BTreeMap;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Arc, Mutex, Once, OnceLock};

    use wfq_checker::{certify_recovery, DurableFate, RecoveryHistory};
    use wfq_sync::fault::{self, FaultAction, FaultPlan};
    use wfqueue::{
        CellState, Config, MemStore, PersistSink, RawQueue, RecoveryOptions, StoreImage,
    };

    /// Cells per segment: small, so runs cross segment boundaries.
    const SEG: usize = 16;
    /// Values each producer attempts per run.
    const VALS_PER_THREAD: u64 = 12;
    /// Index-space headroom of the persist store: burned cells, slow-path
    /// candidate FAAs and batch probes all consume cell indices beyond the
    /// value count, and the store's capacity assert must never be what
    /// fails a matrix run.
    const STORE_CELLS: u64 = 8192;
    /// Request-record slots: one per handle node ever registered.
    const STORE_SLOTS: u64 = 16;
    /// Minimum seeds per crash point.
    const MIN_SEEDS: u64 = 16;
    /// Seed budget for points whose window needs an unlucky schedule: keep
    /// sweeping until the point has actually crashed at least once.
    const MAX_SEEDS: u64 = 96;

    /// Every injection point the crash matrix arms: the three commit
    /// frontiers' unpersisted windows plus the surrounding enqueue,
    /// dequeue, and helping windows a power cut can land in. Reclamation
    /// and pool points are omitted — they mutate only volatile bookkeeping
    /// (`retire_below` is a monotone high-water mark, safe at any cut).
    const CRASH_POINTS: &[&str] = &[
        "enq_fast::post_faa",
        "enq_fast::deposit_unpersisted",
        "enq_slow::request_published",
        "enq_slow::cell_reserved",
        "enq_slow::claim_unpersisted",
        "enq_slow::pre_commit",
        "help_enq::pre_reserve",
        "deq::hazard_published",
        "deq_fast::post_faa",
        "deq_fast::consume_unpersisted",
        "deq_slow::request_published",
        "help_deq::candidate_scan",
        "help_deq::pre_announce",
        "help_deq::pre_complete",
        "advance_index::pre_cas",
    ];

    /// The crash observer and panic hook are process-global; tests that
    /// install them must not interleave.
    fn observer_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        LOCK.get_or_init(|| Mutex::new(()))
            .lock()
            .unwrap_or_else(|e| e.into_inner())
    }

    /// Simulated crashes unwind through the panic hook; without this the
    /// matrix would print hundreds of spurious "thread panicked" reports.
    /// Real panics still reach the previous hook untouched.
    fn silence_crash_unwinds() {
        static ONCE: Once = Once::new();
        ONCE.call_once(|| {
            let prev = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                if fault::crash_point(info.payload()).is_none() {
                    prev(info);
                }
            }));
        });
    }

    fn thread_plan(point: &'static str, seed: u64, thread: u64) -> FaultPlan {
        FaultPlan::fuzz(seed ^ thread.wrapping_mul(0x9E37_79B9_7F4A_7C15), 30)
            // Crash the (seed % 3)-th per-thread hit of the armed point,
            // so across seeds the cut lands at different depths of a run.
            .at_hits(point, seed % 3, 1, FaultAction::Crash)
    }

    /// Reduces a crash snapshot to per-value [`DurableFate`]s — the
    /// checker-facing view. Fate priority mirrors the recovery rules:
    /// a durable consume or deposit is the cell's own verdict; a claimed
    /// request record counts only while its cell is still EMPTY (a claim
    /// over a non-empty cell was already committed, and a stale clobbered
    /// claim must dedup to the cell, never double-count); a published
    /// record is a provable rejection unless something stronger exists.
    fn durable_fates(image: &StoreImage) -> BTreeMap<u64, DurableFate> {
        let scan = image.scan().expect("crash snapshot must stay scannable");
        let mut fates = BTreeMap::new();
        for &(cell, v) in &scan.consumed {
            fates.insert(v, DurableFate::Consumed { cell });
        }
        for &(cell, v) in &scan.deposited {
            fates.entry(v).or_insert(DurableFate::Deposited { cell });
        }
        for claim in &scan.claimed {
            if image.cell_state(claim.cell) == CellState::Empty {
                fates
                    .entry(claim.value)
                    .or_insert(DurableFate::ClaimedUncommitted { cell: claim.cell });
            }
        }
        for &(_, v) in &scan.published {
            fates.entry(v).or_insert(DurableFate::Published);
        }
        fates
    }

    /// Recovers a snapshot and certifies the run against `attempted`.
    /// Returns the recovery's recompleted-claim count (so the caller can
    /// drive the negative control on exactly the runs that exercised the
    /// help-replay window).
    fn recover_and_certify(
        image: &StoreImage,
        attempted: Vec<u64>,
        ctx: &str,
    ) -> u64 {
        let (rq, report) = RawQueue::<SEG>::recover_from_image(
            image,
            Config::default(),
            None,
            &RecoveryOptions::default(),
        )
        .unwrap_or_else(|e| panic!("{ctx}: recovery refused the snapshot: {e}"));

        let mut redelivered = Vec::new();
        let mut h = rq.register();
        while let Some(v) = h.dequeue() {
            redelivered.push(v);
        }
        drop(h);
        assert_eq!(
            redelivered,
            report.survivors,
            "{ctx}: the drain must deliver exactly the reported survivors"
        );

        let history = RecoveryHistory {
            attempted,
            fates: durable_fates(image),
            redelivered,
        };
        match certify_recovery(&history) {
            Ok(cert) => {
                assert_eq!(
                    cert.recompleted as u64, report.recompleted,
                    "{ctx}: checker and recovery disagree on the help-replay count"
                );
                report.recompleted
            }
            Err(v) => panic!("{ctx}: recovery certification failed: {v}"),
        }
    }

    /// One matrix run: producers and consumers hammer a persisted queue
    /// under seeded fuzz plans with `point` armed to crash; the first
    /// crash snapshots the store from inside the window and stops the
    /// survivors; the snapshot is recovered and certified. Runs where no
    /// thread reached the armed hit are certified as clean shutdowns
    /// (snapshot after join). Returns whether a crash fired.
    fn run_crash_schedule(point: &'static str, seed: u64) -> bool {
        let store = Arc::new(MemStore::new(STORE_CELLS, STORE_SLOTS));
        let q = RawQueue::<SEG>::with_persist(
            Config::wf0().with_max_garbage(2),
            Arc::clone(&store) as Arc<dyn PersistSink>,
        );
        let producers = 2u64;
        let consumers = 2 + (seed & 1);

        let attempted = Arc::new(Mutex::new(Vec::<u64>::new()));
        let crashed = Arc::new(AtomicBool::new(false));
        let snapshot = Arc::new(Mutex::new(None::<StoreImage>));
        {
            let (st, cr, sn) = (Arc::clone(&store), Arc::clone(&crashed), Arc::clone(&snapshot));
            fault::set_crash_observer(Arc::new(move |_| {
                // First crash wins: the image at the first power cut is
                // the authoritative one; later crashers and survivors may
                // keep mutating the live store, but certification reads
                // only this snapshot.
                let mut slot = sn.lock().unwrap();
                if slot.is_none() {
                    *slot = Some(st.snapshot());
                }
                cr.store(true, Ordering::SeqCst);
            }));
        }

        std::thread::scope(|s| {
            for t in 0..producers {
                let q = &q;
                let (attempted, crashed) = (Arc::clone(&attempted), Arc::clone(&crashed));
                s.spawn(move || {
                    let r = catch_unwind(AssertUnwindSafe(|| {
                        fault::with_plan(thread_plan(point, seed, t), || {
                            let mut h = q.register();
                            for k in 0..VALS_PER_THREAD {
                                if crashed.load(Ordering::SeqCst) {
                                    return;
                                }
                                let v = t * 1000 + k + 1;
                                // Recorded *before* the call: a value cut
                                // down mid-enqueue was still attempted.
                                attempted.lock().unwrap().push(v);
                                h.enqueue(v);
                            }
                        });
                    }));
                    if let Err(p) = r {
                        if fault::crash_point(&*p).is_none() {
                            std::panic::resume_unwind(p);
                        }
                    }
                });
            }
            for t in 0..consumers {
                let q = &q;
                let crashed = Arc::clone(&crashed);
                s.spawn(move || {
                    let r = catch_unwind(AssertUnwindSafe(|| {
                        fault::with_plan(thread_plan(point, seed, producers + t), || {
                            let mut h = q.register();
                            let attempts = producers * VALS_PER_THREAD / consumers + 6;
                            for _ in 0..attempts {
                                if crashed.load(Ordering::SeqCst) {
                                    return;
                                }
                                let _ = h.dequeue();
                            }
                        });
                    }));
                    if let Err(p) = r {
                        if fault::crash_point(&*p).is_none() {
                            std::panic::resume_unwind(p);
                        }
                    }
                });
            }
        });
        fault::clear_crash_observer();

        let did_crash = crashed.load(Ordering::SeqCst);
        let image = snapshot
            .lock()
            .unwrap()
            .take()
            .unwrap_or_else(|| store.snapshot());
        let attempted = Arc::try_unwrap(attempted)
            .expect("all threads joined")
            .into_inner()
            .unwrap();
        let ctx = format!(
            "point {point}, seed {seed} ({})",
            if did_crash { "crashed" } else { "clean shutdown" }
        );
        let recompleted = recover_and_certify(&image, attempted.clone(), &ctx);

        // Negative control, on every run that exercised the help-replay
        // window: the same snapshot recovered with the replay disabled
        // must lose those values, and the checker must convict it.
        if recompleted > 0 {
            let broken = RecoveryOptions {
                replay_claimed_requests: false,
            };
            let (rq, _) =
                RawQueue::<SEG>::recover_from_image(&image, Config::default(), None, &broken)
                    .unwrap();
            let mut redelivered = Vec::new();
            let mut h = rq.register();
            while let Some(v) = h.dequeue() {
                redelivered.push(v);
            }
            drop(h);
            let history = RecoveryHistory {
                attempted,
                fates: durable_fates(&image),
                redelivered,
            };
            assert!(
                certify_recovery(&history).is_err(),
                "{ctx}: a recovery that skips the help replay must be convicted"
            );
        }
        did_crash
    }

    /// The tentpole matrix: every crash point × ≥16 seeds, each run
    /// certified; points whose window needs scheduling luck get extra
    /// seeds until they have crashed at least once, so the sweep never
    /// reports green without having actually cut power inside each window.
    #[test]
    fn crash_matrix_certifies_every_point() {
        silence_crash_unwinds();
        let _g = observer_lock();
        // A pinned (point, seed) from a failure message replays one run.
        if let Ok(spec) = std::env::var("WFQ_CRASH_SEED") {
            let (point, seed) = spec
                .rsplit_once('=')
                .expect("WFQ_CRASH_SEED must be <point>=<seed>");
            let point = CRASH_POINTS
                .iter()
                .copied()
                .find(|p| *p == point)
                .expect("unknown crash point");
            run_crash_schedule(point, seed.parse().expect("seed must be a u64"));
            return;
        }
        for &point in CRASH_POINTS {
            let mut crashes = 0u64;
            let mut seed = 0u64;
            while seed < MIN_SEEDS || (crashes == 0 && seed < MAX_SEEDS) {
                if run_crash_schedule(point, seed) {
                    crashes += 1;
                }
                seed += 1;
            }
            assert!(
                crashes > 0,
                "no schedule in {seed} seeds crashed inside {point}; \
                 the matrix never tested that window \
                 (replay one run with WFQ_CRASH_SEED='{point}=<seed>')"
            );
        }
    }

    /// The claimed-but-uncommitted help window, staged without a race
    /// (single thread, patience 0):
    ///
    /// 1. enqueue A → fast-path deposit in cell 0, `T = 1`;
    /// 2. dequeue A → durable consume, `H = 1`;
    /// 3. dequeue on the empty queue → the probe's FAA burns cell 1
    ///    (⊤-sealed, `H = 2`) with no durable trace;
    /// 4. enqueue B → the fast attempt claims the sealed cell 1 and fails;
    ///    patience 0 sends it slow: request published, cell 2 reserved and
    ///    claimed, the claim persisted — and the crash rule cuts power at
    ///    `enq_slow::pre_commit`, after the claim but before the commit.
    ///
    /// The image must show exactly: A consumed, slot 0 CLAIMED(B → cell 2),
    /// cell 1 torn. Default recovery re-completes B from the request
    /// record; the negative control below loses it.
    fn staged_pre_commit_image() -> (StoreImage, Vec<u64>) {
        const A: u64 = 41;
        const B: u64 = 42;
        let store = Arc::new(MemStore::new(64, 4));
        let q = RawQueue::<SEG>::with_persist(
            Config::wf0(),
            Arc::clone(&store) as Arc<dyn PersistSink>,
        );
        let mut h = q.register();
        h.enqueue(A);
        assert_eq!(h.dequeue(), Some(A));
        assert_eq!(h.dequeue(), None); // burns cell 1
        let crash = catch_unwind(AssertUnwindSafe(|| {
            fault::with_plan(
                FaultPlan::new().at("enq_slow::pre_commit", FaultAction::Crash),
                || h.enqueue(B),
            );
        }))
        .expect_err("the staged enqueue must crash in the slow path");
        assert_eq!(
            fault::crash_point(&*crash),
            Some("enq_slow::pre_commit"),
            "staging drifted: the crash fired somewhere else"
        );
        drop(h);

        let image = store.snapshot();
        let scan = image.scan().unwrap();
        assert_eq!(scan.consumed, vec![(0, A)], "A durably delivered");
        assert_eq!(scan.claimed.len(), 1, "B's claim persisted: {scan:?}");
        assert_eq!(scan.claimed[0].value, B);
        assert_eq!(scan.claimed[0].cell, 2, "the slow path reserved cell 2");
        assert!(scan.deposited.is_empty(), "B's commit must NOT have landed");
        assert_eq!(scan.head_hwm, 2);
        (image, vec![A, B])
    }

    #[test]
    fn staged_pre_commit_crash_recovers_the_claimed_value() {
        silence_crash_unwinds();
        let _g = observer_lock();
        let (image, attempted) = staged_pre_commit_image();

        let (rq, report) = RawQueue::<SEG>::recover_from_image(
            &image,
            Config::default(),
            None,
            &RecoveryOptions::default(),
        )
        .unwrap();
        assert_eq!(report.survivors, vec![42], "B re-completed from its claim");
        assert_eq!(report.recompleted, 1);
        assert_eq!(report.delivered_pre_crash, vec![41]);
        assert_eq!(report.sealed_cells, 1, "the burned cell 1 is sealed");

        let mut redelivered = Vec::new();
        let mut h = rq.register();
        while let Some(v) = h.dequeue() {
            redelivered.push(v);
        }
        drop(h);
        let history = RecoveryHistory {
            attempted,
            fates: durable_fates(&image),
            redelivered,
        };
        let cert = certify_recovery(&history).expect("the staged recovery must certify");
        assert_eq!(cert.delivered_pre_crash, 1);
        assert_eq!(cert.redelivered, 1);
        assert_eq!(cert.recompleted, 1);
    }

    /// The negative control the acceptance criteria demand: recovery with
    /// the help-replay deliberately skipped loses exactly the
    /// claimed-but-uncommitted value, and the checker convicts the loss
    /// (rather than certifying a recovery that silently dropped data).
    #[test]
    fn skipping_the_help_replay_is_convicted() {
        silence_crash_unwinds();
        let _g = observer_lock();
        let (image, attempted) = staged_pre_commit_image();

        let broken = RecoveryOptions {
            replay_claimed_requests: false,
        };
        let (rq, report) =
            RawQueue::<SEG>::recover_from_image(&image, Config::default(), None, &broken)
                .unwrap();
        assert!(report.survivors.is_empty(), "the broken recovery drops B");

        let mut redelivered = Vec::new();
        let mut h = rq.register();
        while let Some(v) = h.dequeue() {
            redelivered.push(v);
        }
        drop(h);
        let history = RecoveryHistory {
            attempted,
            fates: durable_fates(&image),
            redelivered,
        };
        match certify_recovery(&history) {
            Err(wfq_checker::RecoveryViolation::Lost { value: 42, cell: 2 }) => {}
            other => panic!(
                "the checker must convict the dropped claim as Lost{{42, cell 2}}, got {other:?}"
            ),
        }
    }
}
