//! Long-running soak tests, `#[ignore]`d by default.
//!
//! Run with:
//!
//! ```text
//! cargo test -p wfq-integration --release -- --ignored --test-threads 1
//! ```
//!
//! These are the tests that caught all three paper errata (DESIGN.md §3):
//! minutes of oversubscribed pairs traffic with watchdogs. The default
//! test suite runs abbreviated versions; CI or a release gate should run
//! these in full.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use wfqueue::{Config, RawQueue};

/// Runs `threads` pairs workers for `rounds` rounds with a stall watchdog;
/// panics if any thread makes no progress for `stall_limit`.
fn watched_pairs(threads: usize, pairs: u64, rounds: u32, cfg: Config, stall_limit: Duration) {
    for round in 0..rounds {
        let q: RawQueue<1024> = RawQueue::with_config(cfg);
        let progress: Vec<AtomicU64> = (0..threads).map(|_| AtomicU64::new(0)).collect();
        let done = AtomicU64::new(0);
        std::thread::scope(|s| {
            for t in 0..threads {
                let q = &q;
                let progress = &progress;
                let done = &done;
                s.spawn(move || {
                    let mut h = q.register();
                    let tag = ((t as u64 + 1) << 40) | 1;
                    for i in 0..pairs {
                        h.enqueue(tag + i);
                        let _ = h.dequeue();
                        progress[t].store(i + 1, Ordering::Relaxed);
                    }
                    done.fetch_add(1, Ordering::Relaxed);
                });
            }
            // Watchdog.
            let progress = &progress;
            let done = &done;
            s.spawn(move || {
                let mut last: Vec<u64> = vec![0; threads];
                let mut stalled_since = Instant::now();
                loop {
                    std::thread::sleep(Duration::from_millis(200));
                    if done.load(Ordering::Relaxed) == threads as u64 {
                        return;
                    }
                    let cur: Vec<u64> =
                        progress.iter().map(|p| p.load(Ordering::Relaxed)).collect();
                    if cur != last {
                        last = cur;
                        stalled_since = Instant::now();
                    } else if stalled_since.elapsed() > stall_limit {
                        panic!("round {round}: no progress for {stall_limit:?} at {last:?}");
                    }
                }
            });
        });
    }
}

#[test]
#[ignore = "soak: ~minutes of oversubscribed traffic"]
fn soak_wf10_pairs_oversubscribed() {
    watched_pairs(4, 25_000, 20, Config::wf10(), Duration::from_secs(30));
}

#[test]
#[ignore = "soak: ~minutes of slow-path-heavy traffic"]
fn soak_wf0_pairs_oversubscribed() {
    watched_pairs(4, 25_000, 20, Config::wf0(), Duration::from_secs(30));
}

#[test]
#[ignore = "soak: aggressive reclamation under churn"]
fn soak_tiny_garbage_threshold() {
    watched_pairs(
        3,
        40_000,
        10,
        Config::wf10().with_max_garbage(1),
        Duration::from_secs(30),
    );
}

/// Abbreviated always-on version so the default suite retains a trace of
/// the soak coverage (one round, small counts).
#[test]
fn smoke_watched_pairs() {
    watched_pairs(4, 5_000, 2, Config::wf0(), Duration::from_secs(60));
}
