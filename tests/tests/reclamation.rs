//! Cross-crate reclamation behaviour: the wait-free queue's custom scheme
//! (paper §3.6) and the hazard-pointer domain behind the baselines.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use wfqueue::{Config, RawQueue};

/// Sustained traffic must keep the live-segment count bounded: allocation
/// without reclamation would retain one segment per N operations.
#[test]
fn live_segments_stay_bounded_under_sustained_traffic() {
    let q: RawQueue<16> = RawQueue::with_config(Config::default().with_max_garbage(4));
    let rounds = 300u64;
    let per_round = 16 * 8; // 8 segments worth per round
    let mut h = q.register();
    for r in 0..rounds {
        for v in 0..per_round {
            h.enqueue(r * per_round + v + 1);
        }
        for _ in 0..per_round {
            assert!(h.dequeue().is_some());
        }
    }
    let s = q.stats();
    assert!(s.segs_alloc > 1000, "traffic should churn many segments: {s:?}");
    assert!(
        s.live_segments() < 100,
        "reclamation failed to keep up: {s:?}"
    );
}

/// Concurrent producers/consumers with aggressive reclamation thresholds:
/// correctness must survive constant cleaning.
#[test]
fn aggressive_reclamation_is_transparent_to_values() {
    let q: RawQueue<8> = RawQueue::with_config(Config::default().with_max_garbage(1));
    let sum = AtomicU64::new(0);
    let count = AtomicU64::new(0);
    const TOTAL: u64 = 30_000;
    std::thread::scope(|s| {
        for t in 0..3u64 {
            let q = &q;
            s.spawn(move || {
                let mut h = q.register();
                for v in 0..TOTAL / 3 {
                    h.enqueue(t * (TOTAL / 3) + v + 1);
                }
            });
        }
        for _ in 0..3 {
            let q = &q;
            let sum = &sum;
            let count = &count;
            s.spawn(move || {
                let mut h = q.register();
                loop {
                    if count.load(Ordering::Relaxed) >= TOTAL {
                        break;
                    }
                    if let Some(v) = h.dequeue() {
                        sum.fetch_add(v, Ordering::Relaxed);
                        count.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    assert_eq!(sum.load(Ordering::Relaxed), (1..=TOTAL).sum::<u64>());
    assert!(q.stats().segs_freed > 0, "cleaning never ran: {:?}", q.stats());
}

/// A long-idle handle must not pin memory forever: the cleaner pushes idle
/// threads' segment pointers forward (paper §3.6 "Update head and tail
/// pointers").
#[test]
fn idle_handles_are_pushed_forward() {
    let q: RawQueue<8> = RawQueue::with_config(Config::default().with_max_garbage(2));
    // The idle handle registers and does one op, then sits.
    let mut idle = q.register();
    idle.enqueue(999_999);
    assert_eq!(idle.dequeue(), Some(999_999));

    let mut h = q.register();
    for v in 1..=4_000u64 {
        h.enqueue(v);
        let _ = h.dequeue();
    }
    let s = q.stats();
    assert!(
        s.segs_freed > 100,
        "idle handle should not have pinned reclamation: {s:?}"
    );
    // The idle handle must still work.
    idle.enqueue(42);
    assert_eq!(idle.dequeue(), Some(42));
}

/// Handle churn: registering and dropping handles from short-lived threads
/// must recycle ring nodes instead of growing the ring.
#[test]
fn handle_churn_reuses_ring_slots() {
    let q: RawQueue<64> = RawQueue::new();
    for round in 0..50 {
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let q = &q;
                s.spawn(move || {
                    let mut h = q.register();
                    for v in 0..50 {
                        h.enqueue(round * 1000 + t * 100 + v + 1);
                        let _ = h.dequeue();
                    }
                });
            }
        });
    }
    // 50 rounds × 4 threads but at most 4 concurrent: the ring holds ≤ a
    // few nodes (pool reuse), not 200.
    let stats = q.stats();
    assert_eq!(stats.enqueues(), 50 * 4 * 50);
}

/// Reclamation with a dequeue helper mid-flight: the backward-jump pass
/// (paper: "Visit threads in reverse order") must keep helpers safe. This
/// test drives slow-path dequeues (patience 0) against an aggressive
/// cleaner and checks nothing explodes and values survive.
#[test]
fn reclamation_and_slow_path_dequeues_coexist() {
    let q: RawQueue<8> = RawQueue::with_config(Config::wf0().with_max_garbage(1));
    let stop = AtomicBool::new(false);
    let consumed = AtomicU64::new(0);
    std::thread::scope(|s| {
        // One producer keeps values flowing.
        {
            let q = &q;
            let stop = &stop;
            s.spawn(move || {
                let mut h = q.register();
                let mut v = 1;
                while !stop.load(Ordering::Relaxed) {
                    h.enqueue(v);
                    v += 1;
                }
            });
        }
        // Two consumers race on mostly-contended dequeues.
        for _ in 0..2 {
            let q = &q;
            let consumed = &consumed;
            s.spawn(move || {
                let mut h = q.register();
                let mut got = 0u64;
                while got < 15_000 {
                    if h.dequeue().is_some() {
                        got += 1;
                    }
                }
                consumed.fetch_add(got, Ordering::Relaxed);
            });
        }
        // Stop the producer once consumers are done.
        {
            let consumed = &consumed;
            let stop = &stop;
            s.spawn(move || {
                while consumed.load(Ordering::Relaxed) < 30_000 {
                    std::thread::yield_now();
                }
                stop.store(true, Ordering::Relaxed);
            });
        }
    });
    let s = q.stats();
    // Whether deq_slow fires is scheduling-dependent (a fast-path dequeue
    // only fails when its claim CAS loses a race); on a single-CPU host
    // whole runs can complete fast-path-only. The stress suite asserts
    // slow-path coverage under guaranteed oversubscription instead; here
    // the requirement is that reclamation ran concurrently and nothing
    // broke.
    assert!(s.segs_freed > 0, "cleaner should run: {s:?}");
    assert_eq!(
        s.dequeues() - s.deq_empty,
        30_000,
        "successful dequeues must equal the consumers' count: {s:?}"
    );
}

/// The paper §3.6 "Thread failure": a thread suspended *inside* an
/// operation pins reclamation (unbounded leakage is the documented
/// limitation), but must never block other threads' progress — and
/// reclamation must resume once the thread wakes.
#[test]
fn suspended_thread_pins_memory_but_not_progress() {
    use std::sync::atomic::AtomicBool;
    let q: RawQueue<8> = RawQueue::with_config(Config::default().with_max_garbage(2));
    let parked = AtomicBool::new(false);
    let release = AtomicBool::new(false);

    std::thread::scope(|s| {
        // The "suspended" thread: starts a dequeue-like epoch by doing an
        // operation, then parks while still registered (its hazard clears
        // at op end, but its head/tail pointers stay pinned at the front
        // until the cleaner pushes them — this exercises the push path
        // with a live-but-idle peer).
        {
            let q = &q;
            let parked = &parked;
            let release = &release;
            s.spawn(move || {
                let mut h = q.register();
                h.enqueue(1);
                assert_eq!(h.dequeue(), Some(1));
                parked.store(true, Ordering::Release);
                while !release.load(Ordering::Acquire) {
                    std::thread::yield_now();
                }
                // Wake up and verify the queue still works for us.
                h.enqueue(2);
                assert_eq!(h.dequeue(), Some(2));
            });
        }
        // The busy thread: must make unhindered progress and reclaim.
        {
            let q = &q;
            let parked = &parked;
            let release = &release;
            s.spawn(move || {
                while !parked.load(Ordering::Acquire) {
                    std::thread::yield_now();
                }
                let mut h = q.register();
                for v in 1..=4_000u64 {
                    h.enqueue(v);
                    assert_eq!(h.dequeue(), Some(v));
                }
                let st = q.stats();
                assert!(
                    st.segs_freed > 0,
                    "an idle (not in-operation) peer must not pin reclamation: {st:?}"
                );
                release.store(true, Ordering::Release);
            });
        }
    });
}
